"""The Ocelot orchestrator: plan, compress, group, transfer, decompress.

This is the end-to-end flow of Fig. 1/Fig. 2: the dataset lives on the
source endpoint; compute nodes are requested from the source site's
batch scheduler (with the sentinel transferring raw files while the job
waits); the files are compressed in parallel, optionally grouped, moved
over the WAN by the Globus-style transfer service, and decompressed in
parallel at the destination.  Compression and decompression are *really*
performed (on the synthetic data), while cluster-scale timing (node
counts, queue waits, WAN bandwidth) comes from the simulation substrates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..cache import (
    array_content_digest,
    blob_cache_key,
    build_blob_cache,
    pipeline_fingerprint,
)
from ..compression import CompressedBlob, Compressor, create_blocked_compressor
from ..datasets.base import Field, ScientificDataset
from ..errors import OrchestrationError
from ..faas.service import FuncXService, build_faas_service
from ..prediction.quality_model import QualityPredictor
from ..transfer.gridftp import GridFTPEngine
from ..transfer.service import TransferRequest
from ..transfer.testbed import Testbed, build_testbed
from ..utils.stats import psnr as compute_psnr
from .config import OcelotConfig
from .grouping import FileGrouper
from .parallel import ParallelCostModel, ParallelExecutor
from .phases import PhaseStep
from .planner import CompressionPlan, CompressionPlanner
from .reporting import PhaseTimings, TransferReport
from .sentinel import Sentinel
from .streaming import StreamingPipeline

__all__ = ["OcelotOrchestrator", "StagedFile", "PhaseStep"]


@dataclass
class StagedFile:
    """A dataset file staged on the source endpoint."""

    path: str
    field: Field

    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = self.field.nbytes


@dataclass
class _CacheProbe:
    """Blob-cache lookup result for one staged file."""

    file: StagedFile
    digest: str
    key: str
    #: Stored blob bytes on a hit; ``None`` on a miss.
    payload: Optional[bytes] = None


@dataclass
class _CompressionOutcome:
    """Results of really compressing a batch of staged files."""

    blobs: List[Tuple[str, bytes]] = field(default_factory=list)
    per_file_times_s: List[float] = field(default_factory=list)
    per_file_output_bytes: List[int] = field(default_factory=list)
    original_bytes: int = 0
    #: Distinct entropy stages stamped into the freshly compressed blobs'
    #: metadata (insertion-ordered), and the per-codec block counts
    #: aggregated across those blobs — what ``ocelot inspect`` shows per
    #: blob, summed per job for the completed-job event.
    entropy_stages: List[str] = field(default_factory=list)
    block_codecs: Dict[str, int] = field(default_factory=dict)

    @property
    def compressed_bytes(self) -> int:
        """Total compressed output size."""
        return sum(self.per_file_output_bytes)

    @property
    def ratio(self) -> float:
        """Compression ratio over the compressed subset."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


class OcelotOrchestrator:
    """Drive one dataset transfer end to end."""

    def __init__(
        self,
        config: OcelotConfig,
        testbed: Optional[Testbed] = None,
        faas: Optional[FuncXService] = None,
        predictor: Optional[QualityPredictor] = None,
        cost_model: Optional[ParallelCostModel] = None,
    ) -> None:
        self.config = config
        self.testbed = testbed or build_testbed()
        self.faas = faas or build_faas_service(clock=self.testbed.clock)
        self.planner = CompressionPlanner(config, predictor=predictor)
        self.executor = ParallelExecutor(
            cost_model=cost_model,
            block_workers=config.block_workers,
            worker_backend=config.worker_backend,
        )
        self.grouper = FileGrouper()
        self.sentinel = Sentinel(self.testbed.service.default_settings)
        #: Content-addressed blob/block cache (``None`` when cache_mode is
        #: off).  Instances share the on-disk tree: every job opens its
        #: own handle on ``config.cache_dir``, which is what makes hits
        #: cross-tenant.
        self.blob_cache = build_blob_cache(config)
        self._block_policy = None
        self._block_policy_loaded = False
        #: Memoised ``(entropy_stage, lossless_backend)`` per compressor
        #: name — the codec fields of the blob-cache fingerprint.
        self._codec_stages: Dict[str, Tuple[str, str]] = {}
        #: Suffix appended to the dataset name in every simulated-filesystem
        #: path this run touches (staged files, compressed blobs, groups,
        #: reconstructions).  Empty for the classic exclusive-testbed path;
        #: the job service sets it (e.g. ``"@job-0002"``) when concurrent
        #: jobs name the same dataset, so tenants never clobber each
        #: other's artefacts between phase steps.
        self.artifact_scope: str = ""

    def _scoped(self, dataset_name: str) -> str:
        """Dataset label used for filesystem paths (with tenant scope)."""
        return f"{dataset_name}{self.artifact_scope}"

    # ------------------------------------------------------------------ #
    # Staging
    # ------------------------------------------------------------------ #
    def stage(self, dataset: ScientificDataset, source: str) -> List[StagedFile]:
        """Stage a dataset's files onto the source endpoint's filesystem."""
        endpoint = self.testbed.endpoint(source)
        prefix = f"/data/{self._scoped(dataset.name)}"
        staged: List[StagedFile] = []
        for data_field in dataset:
            path = f"{prefix}/{data_field.filename}"
            if not endpoint.filesystem.exists(path):
                endpoint.filesystem.write(
                    path,
                    size_bytes=int(data_field.nbytes * self.config.size_scale),
                    metadata={"field": data_field.name, "snapshot": str(data_field.snapshot)},
                )
            staged.append(
                StagedFile(
                    path=path,
                    field=data_field,
                    size_bytes=int(data_field.nbytes * self.config.size_scale),
                )
            )
        if not staged:
            raise OrchestrationError(f"dataset {dataset.name!r} contains no files to stage")
        return staged

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        dataset: ScientificDataset,
        source: str,
        destination: str,
        mode: Optional[str] = None,
    ) -> TransferReport:
        """Transfer ``dataset`` from ``source`` to ``destination``.

        ``mode`` overrides the configured transfer mode for this run
        (``direct`` / ``compressed`` / ``grouped``).

        This drives :meth:`iter_phases` straight through: the blocking
        single-job path is literally the phase-step machine with no
        interleaving.
        """
        steps = self.iter_phases(dataset, source, destination, mode=mode)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def iter_phases(
        self,
        dataset: ScientificDataset,
        source: str,
        destination: str,
        mode: Optional[str] = None,
        advance_clock: bool = True,
    ) -> "Generator[PhaseStep, None, TransferReport]":
        """Run the transfer as a generator of resumable phase steps.

        Each yielded :class:`PhaseStep` marks a completed phase (the real
        work — staging, compression, file movement — has already
        happened) together with its simulated duration and the resources
        it occupied.  With ``advance_clock=True`` the shared simulation
        clock advances exactly as the classic blocking path did; the
        multi-job :class:`~repro.service.JobScheduler` passes ``False``
        and does its own interleaved time accounting instead.

        The generator's return value is the finished
        :class:`TransferReport`.
        """
        mode = mode or self.config.mode
        if mode not in ("direct", "compressed", "grouped"):
            raise OrchestrationError(f"unknown transfer mode {mode!r}")
        staged = self.stage(dataset, source)
        yield PhaseStep(
            "stage",
            endpoint=source,
            detail={
                "files": len(staged),
                "bytes": sum(f.size_bytes for f in staged),
            },
        )
        direct_estimate_s = self._estimate_direct_transfer(staged, source, destination)
        if mode == "direct":
            report = yield from self._phases_direct(
                dataset, staged, source, destination, direct_estimate_s, advance_clock
            )
            return report
        report = yield from self._phases_compressed(
            dataset, staged, source, destination, mode, direct_estimate_s, advance_clock
        )
        return report

    # ------------------------------------------------------------------ #
    # Direct (NP) transfers
    # ------------------------------------------------------------------ #
    def _estimate_direct_transfer(
        self, staged: List[StagedFile], source: str, destination: str
    ) -> float:
        link = self.testbed.service.topology.link(source, destination)
        src = self.testbed.endpoint(source)
        dst = self.testbed.endpoint(destination)
        engine = GridFTPEngine(settings=self.testbed.service.default_settings)
        estimate = engine.estimate(
            [f.size_bytes for f in staged],
            link,
            storage_read_bps=src.storage_read_bps * src.dtn_count,
            storage_write_bps=dst.storage_write_bps * dst.dtn_count,
        )
        return estimate.duration_s

    def _phases_direct(
        self,
        dataset: ScientificDataset,
        staged: List[StagedFile],
        source: str,
        destination: str,
        direct_estimate_s: float,
        advance_clock: bool,
    ) -> Generator[PhaseStep, None, TransferReport]:
        task = self.testbed.service.submit(
            TransferRequest(
                source_endpoint=source,
                destination_endpoint=destination,
                paths=[f.path for f in staged],
                destination_prefix=self.config.destination_prefix,
                label=f"{dataset.name}:direct",
            ),
            advance_clock=advance_clock,
        )
        yield PhaseStep(
            "transfer",
            duration_s=task.duration_s,
            link=(source, destination),
            detail={
                "bytes_shipped": task.bytes_transferred,
                "files": len(staged),
            },
        )
        timings = PhaseTimings(transfer_s=task.duration_s)
        return TransferReport(
            dataset=dataset.name,
            mode="direct",
            source=source,
            destination=destination,
            file_count=len(staged),
            total_bytes=sum(f.size_bytes for f in staged),
            transferred_files=len(staged),
            transferred_bytes=task.bytes_transferred,
            compression_ratio=1.0,
            timings=timings,
            direct_transfer_s=direct_estimate_s,
            compressor="",
            error_bound="",
        )

    # ------------------------------------------------------------------ #
    # Compressed (CP) and grouped (OP) transfers
    # ------------------------------------------------------------------ #
    def _phases_compressed(
        self,
        dataset: ScientificDataset,
        staged: List[StagedFile],
        source: str,
        destination: str,
        mode: str,
        direct_estimate_s: float,
        advance_clock: bool,
    ) -> Generator[PhaseStep, None, TransferReport]:
        src_endpoint = self.testbed.endpoint(source)
        dst_endpoint = self.testbed.endpoint(destination)
        link = self.testbed.service.topology.link(source, destination)
        timings = PhaseTimings()
        notes: List[str] = []

        # 1. Plan the compression configuration.
        plan_start = time.perf_counter()
        plan = self.planner.plan(representative=staged[0].field)
        timings.planning_s = time.perf_counter() - plan_start if plan.used_predictor else 0.0
        yield PhaseStep(
            "plan",
            duration_s=timings.planning_s,
            detail={
                "compressor": plan.compressor,
                "error_bound": plan.error_bound.describe(),
                "used_predictor": plan.used_predictor,
            },
        )

        # 1b. Consult the content-addressed blob cache: files whose
        # compressed bytes are already stored skip compression entirely.
        probes = self._consult_blob_cache(staged, plan)
        streamed = self.config.transfer_mode == "streamed" and mode == "compressed"
        hit_probes: List[_CacheProbe] = [
            p for p in (probes or []) if p.payload is not None
        ]
        if streamed and hit_probes and len(hit_probes) < len(probes or []):
            # A partial hit cannot join a streamed run (blocks stream from
            # freshly encoded files only), so those hits are set aside and
            # their files stream uncached.
            notes.append(
                f"streamed run bypassed {len(hit_probes)} partial blob-cache hits"
            )
            for probe in hit_probes:
                probe.payload = None
            hit_probes = []
        if probes is None:
            miss_files = list(staged)
        else:
            miss_files = [p.file for p in probes if p.payload is None]
        full_hit = probes is not None and not miss_files
        if full_hit and streamed:
            # Nothing left to encode: short-circuit to a bulk ship of the
            # cached blobs (transfer billing stays on the same clock rules).
            streamed = False
            notes.append("full blob-cache hit: streamed run shipped cached blobs in bulk")
        if hit_probes:
            notes.append(
                f"blob cache served {len(hit_probes)}/{len(staged)} files "
                f"(mode {self.config.cache_mode})"
            )

        # 2. Request compute nodes for the compression job (capped at the
        # size of the source site's partition).  A full cache hit skips
        # the batch-scheduler request entirely — those nodes stay free for
        # cold jobs.
        scheduler = self.faas.endpoint(source).scheduler
        compression_nodes = min(self.config.compression_nodes, scheduler.total_nodes)
        allocation = None
        if not full_hit:
            # In scheduler mode (advance_clock=False) node occupancy is
            # charged by the job scheduler's timeline pools, so the batch
            # scheduler contributes only its sampled queue wait — charging
            # its backfill deficit too would count the same contention twice.
            allocation = scheduler.request(
                compression_nodes,
                now=self.testbed.clock.now,
                include_backfill=advance_clock,
            )
            timings.node_wait_s = allocation.wait_s
        # A streamed run drives the shared clock itself (the transfer
        # stream stamps per-chunk wire times against it), so it always
        # advances for real; the bulk path only advances when this
        # generator is the sole owner of the clock.
        try:
            # 3. Sentinel: transfer raw files while waiting for nodes.
            # Cache-hit files are never shipped raw — their compressed
            # bytes already exist, so only the miss set is eligible.
            raw_paths: List[str] = []
            to_compress = list(miss_files)
            if (
                allocation is not None
                and self.config.sentinel_enabled
                and allocation.wait_s > self.config.sentinel_wait_threshold_s
            ):
                decision = self.sentinel.plan(
                    [(f.path, f.size_bytes) for f in miss_files],
                    wait_s=allocation.wait_s,
                    link=link,
                    threshold_s=self.config.sentinel_wait_threshold_s,
                )
                raw_paths = decision.raw_paths
                timings.raw_transfer_s = decision.raw_transfer_s
                raw_set = set(raw_paths)
                to_compress = [f for f in miss_files if f.path not in raw_set]
                if raw_paths:
                    dst_endpoint.filesystem.copy_from(src_endpoint.filesystem, raw_paths)
                    notes.append(
                        f"sentinel transferred {len(raw_paths)} files raw during a "
                        f"{allocation.wait_s:.0f}s node wait"
                    )
            if advance_clock or streamed:
                self.testbed.clock.advance(max(timings.node_wait_s, timings.raw_transfer_s))
            yield PhaseStep(
                "wait",
                duration_s=max(timings.node_wait_s, timings.raw_transfer_s),
                endpoint=source,
                detail={
                    "node_wait_s": timings.node_wait_s,
                    "raw_files": len(raw_paths),
                    "raw_transfer_s": timings.raw_transfer_s,
                },
            )

            # 3b. Streamed transfer: overlap compress → WAN → decode instead
            # of serialising the phases.  Grouped mode keeps the bulk path
            # (groups bundle whole compressed files, which defeats per-block
            # streaming).
            if streamed:
                stream_start = self.testbed.clock.now
                report = self._run_streamed(
                    self._scoped(dataset.name),
                    dataset,
                    staged,
                    to_compress,
                    raw_paths,
                    plan,
                    timings,
                    notes,
                    source,
                    destination,
                    direct_estimate_s,
                    scheduler,
                    allocation,
                    compression_nodes,
                )
                yield PhaseStep(
                    "stream",
                    duration_s=max(0.0, self.testbed.clock.now - stream_start),
                    endpoint=source,
                    nodes=compression_nodes,
                    link=(source, destination),
                    detail={
                        "bytes_shipped": report.transferred_bytes,
                        "chunks": timings.streaming_s > 0,
                    },
                )
                return report
            if self.config.transfer_mode == "streamed" and mode == "grouped":
                notes.append(
                    "grouped mode keeps the bulk path; use mode='compressed' "
                    "for streamed block transfer"
                )

            # 4. Really compress the remaining files.  Cluster-scale timing
            # uses either the measured per-file times (scaled by
            # work_time_scale) or an assumed native-compressor throughput
            # when configured.
            probe_map = {p.file.path: p for p in probes} if probes is not None else None
            outcome = self._compress_files(to_compress, plan, source, probe_map)
            if allocation is not None:
                if self.config.assumed_compression_throughput_mbps:
                    throughput = self.config.assumed_compression_throughput_mbps * 1e6
                    per_file_times = [f.size_bytes / throughput for f in to_compress]
                    time_scale = 1.0
                else:
                    per_file_times = outcome.per_file_times_s
                    time_scale = self.config.resolved_work_time_scale()
                makespan = self.executor.compression_makespan(
                    per_file_times,
                    outcome.per_file_output_bytes,
                    nodes=compression_nodes,
                    cores_per_node=self.config.cores_per_node,
                    time_scale=time_scale,
                )
                timings.compression_s = makespan.makespan_s
            # Cached blobs are read off the parallel filesystem instead of
            # being recomputed; billing that read keeps warm runs honest
            # (tiny, but never free).
            cache_read_s = 0.0
            for probe in hit_probes:
                payload = probe.payload or b""
                outcome.blobs.append((probe.file.field.filename, payload))
                outcome.per_file_output_bytes.append(
                    int(len(payload) * self.config.size_scale)
                )
                outcome.original_bytes += probe.file.size_bytes
                cache_read_s += (
                    len(payload) * self.config.size_scale
                    / self.executor.cost_model.pfs_read_bps
                )
            timings.compression_s += cache_read_s
            if advance_clock:
                self.testbed.clock.advance(timings.compression_s)
        finally:
            # Normal exit from the compression phase and a cancelled job
            # closing this generator mid-phase both land here: the nodes
            # go back to the pool (release is idempotent, so the streamed
            # branch having already released is fine; a full cache hit
            # never requested any).
            if allocation is not None:
                scheduler.release(allocation)
        hit_names = {p.file.field.filename for p in hit_probes}
        files_detail = []
        for (name, _), size in zip(outcome.blobs, outcome.per_file_output_bytes):
            entry: Dict[str, Any] = {"name": name, "bytes": size}
            if probes is not None:
                entry["cache"] = "hit" if name in hit_names else "miss"
            files_detail.append(entry)
        compress_detail: Dict[str, Any] = {
            "files": files_detail,
            "bytes_compressed": outcome.compressed_bytes,
            "original_bytes": outcome.original_bytes,
            "ratio": outcome.ratio if outcome.blobs else 1.0,
        }
        cache_hits = len(hit_probes)
        cache_misses = len(probes) - cache_hits if probes is not None else 0
        if probes is not None:
            compress_detail["cache"] = {
                "mode": self.config.cache_mode,
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": cache_hits / len(probes) if probes else 0.0,
            }
        yield PhaseStep(
            "compress",
            duration_s=timings.compression_s,
            endpoint=source,
            # A full cache hit ran on zero compute nodes: the scheduler's
            # per-endpoint node pool must not bill this phase.
            nodes=compression_nodes if allocation is not None else 0,
            detail=compress_detail,
        )

        # 5. Optionally group the compressed files.
        if mode == "grouped" and outcome.blobs:
            group_prefix = f"/groups/{self._scoped(dataset.name)}"
            groups, plan_info = self.grouper.build_groups(
                outcome.blobs,
                world_size=None if self.config.group_target_bytes else self.config.group_world_size,
                target_bytes=self.config.group_target_bytes,
                prefix=f"{dataset.name}",
            )
            grouped_bytes = 0
            transfer_paths = []
            for group in groups:
                path = f"{group_prefix}/{group.name}"
                src_endpoint.filesystem.write(
                    path,
                    data=group.payload,
                    size_bytes=int(group.size_bytes * self.config.size_scale),
                )
                transfer_paths.append(path)
                grouped_bytes += int(group.size_bytes * self.config.size_scale)
            metadata_path = f"{group_prefix}/metadata.txt"
            src_endpoint.filesystem.write(
                metadata_path, data=plan_info.metadata_text().encode("utf-8")
            )
            transfer_paths.append(metadata_path)
            timings.grouping_s = grouped_bytes / self.executor.cost_model.pfs_write_bps * 2.0
            notes.append(f"grouped {len(outcome.blobs)} compressed files into {len(groups)} groups")
            yield PhaseStep(
                "group",
                duration_s=timings.grouping_s,
                endpoint=source,
                detail={"groups": len(groups), "grouped_bytes": grouped_bytes},
            )
        elif outcome.blobs:
            transfer_paths = []
            for name, payload in outcome.blobs:
                path = f"/compressed/{self._scoped(dataset.name)}/{name}.sz"
                src_endpoint.filesystem.write(
                    path, data=payload, size_bytes=int(len(payload) * self.config.size_scale)
                )
                transfer_paths.append(path)
        else:
            transfer_paths = []

        # 6. Transfer the compressed artefacts over the WAN.
        transferred_bytes = 0
        if transfer_paths:
            task = self.testbed.service.submit(
                TransferRequest(
                    source_endpoint=source,
                    destination_endpoint=destination,
                    paths=transfer_paths,
                    destination_prefix=self.config.destination_prefix,
                    label=f"{dataset.name}:{mode}",
                ),
                advance_clock=advance_clock,
            )
            timings.transfer_s = task.duration_s
            transferred_bytes = task.bytes_transferred
        raw_path_set = set(raw_paths)
        transferred_bytes += sum(
            f.size_bytes for f in staged if f.path in raw_path_set
        )
        yield PhaseStep(
            "transfer",
            duration_s=timings.transfer_s,
            link=(source, destination),
            detail={
                "bytes_shipped": transferred_bytes,
                "files": len(transfer_paths) + len(raw_paths),
            },
        )

        # 7. Decompress at the destination.  Cache-hit files decode like
        # any other blob, and their originals participate in the quality
        # check — a warm run must report the same PSNR as the cold run
        # that populated the cache.
        quality = self._decompress_and_verify(
            dataset,
            to_compress + [p.file for p in hit_probes],
            transfer_paths,
            destination,
            mode,
            timings,
            advance_clock=advance_clock,
        )
        yield PhaseStep(
            "decompress",
            duration_s=timings.decompression_s,
            endpoint=destination,
            nodes=min(
                self.config.decompression_nodes,
                self.faas.endpoint(destination).scheduler.total_nodes,
            ),
            detail={k: v for k, v in quality.items()},
        )

        original_bytes = sum(f.size_bytes for f in staged)
        ratio = outcome.ratio if outcome.blobs else 1.0
        report = TransferReport(
            dataset=dataset.name,
            mode=mode,
            source=source,
            destination=destination,
            file_count=len(staged),
            total_bytes=original_bytes,
            transferred_files=len(transfer_paths) + len(raw_paths),
            transferred_bytes=transferred_bytes,
            compression_ratio=ratio,
            timings=timings,
            direct_transfer_s=direct_estimate_s,
            compressor=plan.compressor,
            error_bound=plan.error_bound.describe(),
            predicted_quality=plan.predicted.as_dict() if plan.predicted else None,
            measured_psnr_db=quality.get("psnr"),
            max_abs_error=quality.get("max_abs_error"),
            notes=notes,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            entropy_stage=",".join(outcome.entropy_stages),
            block_codecs=dict(outcome.block_codecs) or None,
        )
        return report

    # ------------------------------------------------------------------ #
    def _run_streamed(
        self,
        scoped_name: str,
        dataset: ScientificDataset,
        staged: List[StagedFile],
        to_compress: List[StagedFile],
        raw_paths: List[str],
        plan: CompressionPlan,
        timings: PhaseTimings,
        notes: List[str],
        source: str,
        destination: str,
        direct_estimate_s: float,
        scheduler,
        allocation,
        compression_nodes: int,
    ) -> TransferReport:
        """Finish a compressed-mode run through the streaming pipeline."""
        streamer = StreamingPipeline(
            self.config,
            self.testbed,
            self._build_compressor,
            compression_nodes=compression_nodes,
            cost_model=self.executor.cost_model,
        )
        outcome = streamer.run(scoped_name, to_compress, plan, source, destination)
        scheduler.release(allocation)
        timings.compression_s = outcome.compression_s
        timings.transfer_s = outcome.transfer_s
        timings.decompression_s = outcome.decompression_s
        timings.streaming_s = outcome.streaming_s
        raw_path_set = set(raw_paths)
        transferred_bytes = outcome.transferred_bytes + sum(
            f.size_bytes for f in staged if f.path in raw_path_set
        )
        quality = outcome.quality()
        if outcome.chunk_count:
            notes.append(
                f"streamed {outcome.chunk_count} block chunks "
                f"(window {self.config.stream_window}); overlap saved "
                f"{outcome.overlap_savings_s:.1f}s vs serialised phases"
            )
        original_bytes = sum(f.size_bytes for f in staged)
        return TransferReport(
            dataset=dataset.name,
            mode="compressed",
            source=source,
            destination=destination,
            file_count=len(staged),
            total_bytes=original_bytes,
            transferred_files=len(outcome.files) + len(raw_paths),
            transferred_bytes=transferred_bytes,
            compression_ratio=outcome.ratio if outcome.files else 1.0,
            timings=timings,
            direct_transfer_s=direct_estimate_s,
            compressor=plan.compressor,
            error_bound=plan.error_bound.describe(),
            transfer_mode="streamed",
            predicted_quality=plan.predicted.as_dict() if plan.predicted else None,
            measured_psnr_db=quality.get("psnr"),
            max_abs_error=quality.get("max_abs_error"),
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    def _load_block_policy(self):
        """Load (once) the learned block policy configured for this run."""
        if not self._block_policy_loaded:
            self._block_policy_loaded = True
            if self.config.block_policy_path:
                from ..prediction.block_policy import BlockPolicy

                self._block_policy = BlockPolicy.load(self.config.block_policy_path)
        return self._block_policy

    def _build_compressor(self, name: str) -> Compressor:
        """Instantiate a compressor, switching pipelines into blocked mode.

        When ``block_size`` is configured, prediction pipelines partition
        each file into independent blocks (blob format v2) and their
        per-block tasks are dispatched through the executor's block thread
        pool, so measured per-file times reflect genuine concurrency.
        """
        return create_blocked_compressor(
            name,
            block_shape=self.config.block_size,
            adaptive_predictor=self.config.adaptive_predictor,
            block_executor=self.executor.map_blocks,
            block_policy=self._load_block_policy(),
            shared_codebook=self.config.shared_codebook,
            block_cache=self.blob_cache,
            block_cache_tag=self.config.block_policy_path or "",
            entropy_stage=self.config.entropy_stage,
        )

    def _codec_stage_names(self, compressor: str) -> Tuple[str, str]:
        """Effective ``(entropy_stage, lossless_backend)`` of a compressor.

        The configured ``entropy_stage`` override may be ``None`` (keep
        the registry default), so the stage that actually runs is only
        knowable from an instance; it is resolved once per name.
        """
        cached = self._codec_stages.get(compressor)
        if cached is None:
            instance = self._build_compressor(compressor)
            cached = (
                str(getattr(getattr(instance, "config", None), "entropy_stage", "none")),
                str(getattr(getattr(instance, "_lossless", None), "name", "")),
            )
            self._codec_stages[compressor] = cached
        return cached

    def _cache_fingerprint(self, compressor: str, error_bound_abs: float) -> Dict[str, Any]:
        """Pipeline fingerprint of this run for blob-cache keys.

        Everything that changes the compressed bytes participates, so two
        jobs share an entry only when compressing would produce the same
        output: compressor, resolved absolute bound, block size, codebook
        mode, adaptive selection, the learned block policy, and the
        entropy/lossless codecs (``sz3`` with ``entropy_stage="huffman"``
        vs ``"none"`` produces different bytes under the same name).
        """
        entropy_stage, lossless_backend = self._codec_stage_names(compressor)
        return pipeline_fingerprint(
            compressor=compressor,
            error_bound_abs=error_bound_abs,
            block_shape=self.config.block_size,
            codebook_mode="shared" if self.config.shared_codebook else "per-block",
            adaptive_predictor=self.config.adaptive_predictor,
            block_policy=self.config.block_policy_path or "",
            extra={"entropy": entropy_stage, "lossless": lossless_backend},
        )

    def _consult_blob_cache(
        self, staged: List[StagedFile], plan: CompressionPlan
    ) -> Optional[List[_CacheProbe]]:
        """Look every staged file up in the whole-blob cache tier.

        Returns ``None`` when caching is off (so the off path never hashes
        a byte), else one :class:`_CacheProbe` per file with the stored
        blob payload attached on a hit.
        """
        cache = self.blob_cache
        if cache is None:
            return None
        probes: List[_CacheProbe] = []
        for staged_file in staged:
            data = np.asarray(staged_file.field.data)
            digest = array_content_digest(data)
            key = blob_cache_key(
                digest,
                self._cache_fingerprint(plan.compressor, plan.error_bound.absolute_for(data)),
            )
            payload = cache.get_blob(key)
            probes.append(_CacheProbe(file=staged_file, digest=digest, key=key, payload=payload))
        return probes

    def _compress_files(
        self,
        staged: List[StagedFile],
        plan: CompressionPlan,
        source: str,
        probes: Optional[Dict[str, _CacheProbe]] = None,
    ) -> _CompressionOutcome:
        """Compress staged files for real, recording per-file cost.

        Each file's blocks fan out through :meth:`ParallelExecutor.map_blocks`
        (when blocked mode is on), so the per-file wall time already
        accounts for local multi-core execution.  With caching on,
        ``probes`` carries each file's content digest and cache key: they
        are stamped into the blob metadata (so operators can correlate
        blobs with cache entries) and freshly compressed blobs are stored
        back into the whole-blob tier.
        """
        outcome = _CompressionOutcome()
        if not staged:
            return outcome
        compressor = self._build_compressor(plan.compressor)
        for staged_file in staged:
            probe = (probes or {}).get(staged_file.path)
            start = time.perf_counter()
            result = compressor.compress(
                staged_file.field.data,
                plan.error_bound,
                verify=self.config.verify_error_bound,
            )
            elapsed = time.perf_counter() - start
            if probe is not None:
                result.blob.metadata["content_digest"] = probe.digest
                result.blob.metadata["cache_key"] = probe.key
            stage = result.blob.metadata.get("entropy_stage")
            if stage and stage not in outcome.entropy_stages:
                outcome.entropy_stages.append(str(stage))
            for codec, count in (result.blob.metadata.get("block_codecs") or {}).items():
                outcome.block_codecs[codec] = outcome.block_codecs.get(codec, 0) + int(count)
            payload = result.blob.to_bytes()
            if probe is not None and self.blob_cache is not None and self.blob_cache.writable:
                self.blob_cache.put_blob(
                    probe.key,
                    payload,
                    meta={
                        "file": staged_file.field.filename,
                        "compressor": plan.compressor,
                        "error_bound": plan.error_bound.describe(),
                        "content_digest": probe.digest,
                    },
                )
            outcome.blobs.append((staged_file.field.filename, payload))
            outcome.per_file_times_s.append(elapsed)
            outcome.per_file_output_bytes.append(int(len(payload) * self.config.size_scale))
            outcome.original_bytes += staged_file.size_bytes
        return outcome

    def _decompress_and_verify(
        self,
        dataset: ScientificDataset,
        compressed_files: List[StagedFile],
        transfer_paths: List[str],
        destination: str,
        mode: str,
        timings: PhaseTimings,
        advance_clock: bool = True,
    ) -> Dict[str, float]:
        """Really decompress at the destination; fill in decompression timing."""
        if not transfer_paths:
            return {}
        dst_endpoint = self.testbed.endpoint(destination)
        originals: Dict[str, Field] = {f.field.filename: f.field for f in compressed_files}
        per_file_times: List[float] = []
        per_file_output_bytes: List[int] = []
        psnr_values: List[float] = []
        max_errors: List[float] = []
        blobs: List[Tuple[str, bytes]] = []
        for path in transfer_paths:
            entry = dst_endpoint.filesystem.stat(path)
            if entry.data is None:
                continue
            if path.endswith("metadata.txt"):
                continue
            if mode == "grouped":
                blobs.extend(self.grouper.unpack(entry.data))
            else:
                name = path.rsplit("/", 1)[-1]
                if name.endswith(".sz"):
                    name = name[:-3]
                blobs.append((name, entry.data))
        decompressors: Dict[str, Compressor] = {}
        for name, payload in blobs:
            start = time.perf_counter()
            blob = CompressedBlob.from_bytes(payload)
            compressor = decompressors.get(blob.compressor)
            if compressor is None:
                compressor = self._build_compressor(blob.compressor)
                decompressors[blob.compressor] = compressor
            recon = compressor.decompress(blob)
            elapsed = time.perf_counter() - start
            per_file_times.append(elapsed)
            per_file_output_bytes.append(int(recon.nbytes * self.config.size_scale))
            original = originals.get(name)
            if original is not None:
                data = np.asarray(original.data, dtype=np.float64)
                recon64 = np.asarray(recon, dtype=np.float64)
                psnr_values.append(compute_psnr(data, recon64))
                max_errors.append(float(np.max(np.abs(data - recon64))))
            dst_endpoint.filesystem.write(
                f"/decompressed/{self._scoped(dataset.name)}/{name}",
                size_bytes=int(recon.nbytes * self.config.size_scale),
            )
        if per_file_times:
            if self.config.assumed_decompression_throughput_mbps:
                throughput = self.config.assumed_decompression_throughput_mbps * 1e6
                per_file_times = [size / throughput for size in per_file_output_bytes]
                time_scale = 1.0
            else:
                time_scale = self.config.resolved_work_time_scale()
            decompression_nodes = min(
                self.config.decompression_nodes,
                self.faas.endpoint(destination).scheduler.total_nodes,
            )
            makespan = self.executor.decompression_makespan(
                per_file_times,
                per_file_output_bytes,
                nodes=decompression_nodes,
                cores_per_node=self.config.cores_per_node,
                time_scale=time_scale,
            )
            timings.decompression_s = makespan.makespan_s
            if advance_clock:
                self.testbed.clock.advance(timings.decompression_s)
        finite_psnr = [p for p in psnr_values if np.isfinite(p)]
        quality: Dict[str, float] = {}
        if finite_psnr:
            quality["psnr"] = float(np.mean(finite_psnr))
        if max_errors:
            quality["max_abs_error"] = float(np.max(max_errors))
        return quality

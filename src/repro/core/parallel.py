"""Parallel (de)compression executor and scaling model.

Two concerns live here:

1. **Really doing the work** — compressing/decompressing the files of a
   dataset, optionally across local worker threads, measuring per-file
   wall time.
2. **Modelling the cluster** — converting measured per-file times into
   the makespan a multi-node MPI job would achieve.  Compression scales
   with cores until the number of files saturates the parallelism
   (Fig. 9 left); decompression is limited by parallel-filesystem write
   contention, so beyond a few nodes it *slows down* (Fig. 9 right).
"""

from __future__ import annotations

import heapq
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError
from ..utils.logging import get_logger

__all__ = [
    "ParallelCostModel",
    "MakespanEstimate",
    "ParallelExecutor",
    "BlockProcessPool",
    "VALID_WORKER_BACKENDS",
]

T = TypeVar("T")
R = TypeVar("R")

#: How per-block work is dispatched.  ``thread`` keeps the classic GIL-
#: sharing pool (the hot kernels release the GIL); ``process`` fans
#: blocks out over worker *processes* so the remaining pure-Python parts
#: of the encode path scale past the GIL too.
VALID_WORKER_BACKENDS: Tuple[str, ...] = ("thread", "process")

#: Per-worker payload installed by the pool initializer.  Module level so
#: each mapped task only ships its (small) item over the pipe — the
#: payload (array descriptor, codec configuration, …) crosses the
#: process boundary exactly once per worker.
_WORKER_PAYLOAD: Any = None


def _store_worker_payload(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _invoke_worker(task: Tuple[Callable[[Any, Any], Any], Any]) -> Any:
    worker, item = task
    return worker(_WORKER_PAYLOAD, item)


def _probe_worker(_payload: Any, _item: Any) -> bool:
    return True


class BlockProcessPool:
    """A process pool primed with a per-worker payload.

    :meth:`map` dispatches ``worker(payload, item)`` over the pool and
    returns results in item order (``ProcessPoolExecutor.map`` preserves
    ordering, which blob assembly relies on).  ``worker`` must be a
    module-level function so it pickles by reference.
    """

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool

    def map(self, worker: Callable[[Any, T], R], items: Sequence[T]) -> List[R]:
        return list(self._pool.map(_invoke_worker, [(worker, item) for item in items]))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BlockProcessPool":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


@dataclass
class MakespanEstimate:
    """Simulated makespan of a parallel job built from per-file timings."""

    makespan_s: float
    compute_s: float
    io_s: float
    cores_used: int
    nodes: int
    files: int

    @property
    def speedup_vs_serial(self) -> float:
        """Speed-up relative to running all files on one core."""
        serial = self.compute_s
        return serial / self.makespan_s if self.makespan_s > 0 else float("inf")


@dataclass
class ParallelCostModel:
    """Cluster parameters for the makespan model.

    ``pfs_write_bps`` and ``writer_saturation_cores`` control the
    decompression-side I/O contention: the effective parallel-filesystem
    write bandwidth degrades as ``1 / (1 + (writers / saturation)^gamma)``,
    which yields the non-monotonic decompression scaling of Fig. 9.
    """

    parallel_efficiency: float = 0.9
    startup_s_per_node: float = 0.05
    pfs_write_bps: float = 40e9
    pfs_read_bps: float = 80e9
    writer_saturation_cores: int = 256
    io_contention_gamma: float = 1.6

    def __post_init__(self) -> None:
        if not 0 < self.parallel_efficiency <= 1:
            raise ConfigurationError("parallel_efficiency must be in (0, 1]")
        if self.pfs_write_bps <= 0 or self.pfs_read_bps <= 0:
            raise ConfigurationError("filesystem bandwidths must be positive")
        if self.writer_saturation_cores < 1:
            raise ConfigurationError("writer_saturation_cores must be >= 1")

    def write_bandwidth(self, writers: int) -> float:
        """Aggregate write bandwidth achieved by ``writers`` concurrent writers."""
        ratio = max(0.0, writers / self.writer_saturation_cores)
        return self.pfs_write_bps / (1.0 + ratio**self.io_contention_gamma)

    def read_bandwidth(self, readers: int) -> float:
        """Aggregate read bandwidth achieved by ``readers`` concurrent readers."""
        ratio = max(0.0, readers / (self.writer_saturation_cores * 4))
        return self.pfs_read_bps / (1.0 + ratio**self.io_contention_gamma)


def _lpt_makespan(times: Sequence[float], workers: int) -> float:
    """Longest-processing-time greedy schedule makespan."""
    if not times:
        return 0.0
    workers = max(1, workers)
    heap = [0.0] * min(workers, len(times))
    heapq.heapify(heap)
    for cost in sorted(times, reverse=True):
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + cost)
    return max(heap)


class ParallelExecutor:
    """Run per-file work and model its parallel execution on a cluster."""

    def __init__(
        self,
        cost_model: Optional[ParallelCostModel] = None,
        local_workers: int = 1,
        block_workers: int = 1,
        worker_backend: str = "thread",
    ) -> None:
        if local_workers < 1:
            raise ConfigurationError("local_workers must be >= 1")
        if block_workers < 1:
            raise ConfigurationError("block_workers must be >= 1")
        if worker_backend not in VALID_WORKER_BACKENDS:
            raise ConfigurationError(
                f"worker_backend must be one of {VALID_WORKER_BACKENDS}, "
                f"got {worker_backend!r}"
            )
        self.cost_model = cost_model or ParallelCostModel()
        self.local_workers = local_workers
        self.block_workers = block_workers
        self.worker_backend = worker_backend

    # ------------------------------------------------------------------ #
    # Real execution
    # ------------------------------------------------------------------ #
    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item, optionally with local worker threads."""
        if self.local_workers == 1 or len(items) <= 1:
            return [func(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.local_workers) as pool:
            return list(pool.map(func, items))

    def map_blocks(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply per-block work concurrently on the block thread pool.

        This is the fan-out the blocked compression pipelines dispatch
        through: the hot kernels (NumPy ufuncs, deflate) release the GIL,
        so blocks of one file genuinely overlap on multicore hosts.
        Results are returned in item order.

        Always thread-based — ``func`` may be an arbitrary closure, which
        cannot cross a process boundary.  A process-backed executor
        additionally offers :meth:`open_block_pool`, and callers that can
        express their work as module-level functions (the prediction
        pipelines) use it; everything else, decompression included, keeps
        working through this method unchanged.
        """
        if self.block_workers == 1 or len(items) <= 1:
            return [func(item) for item in items]
        workers = min(self.block_workers, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, items))

    def open_block_pool(self, payload: Any) -> Optional[BlockProcessPool]:
        """Start a process pool primed with ``payload`` (process mode only).

        Returns ``None`` — and the caller falls back to the thread path —
        when the executor is not in process mode, there is no block
        parallelism to exploit, or the host cannot start worker processes
        at all (fork disabled, ``/dev/shm`` missing, …).  Unlike
        :meth:`map_blocks`, the mapped worker must be a *module-level*
        function: closures don't cross process boundaries, which is why
        the pipelines ship an explicit payload instead of capturing state.

        A probe task runs eagerly because ``ProcessPoolExecutor`` spawns
        workers lazily; "the pool cannot start" should surface here, where
        falling back is cheap, not halfway through a compression.
        """
        if self.worker_backend != "process" or self.block_workers < 2:
            return None
        log = get_logger(__name__)
        try:
            # Fork start-up is ~100x cheaper than spawn and inherits the
            # payload without pickling; use it wherever the platform offers it.
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:
                ctx = multiprocessing.get_context()
            pool = ProcessPoolExecutor(
                max_workers=self.block_workers,
                mp_context=ctx,
                initializer=_store_worker_payload,
                initargs=(payload,),
            )
        except (OSError, ValueError, ImportError) as exc:
            log.warning(
                "cannot create a worker process pool (%s: %s); "
                "falling back to threads",
                type(exc).__name__,
                exc,
            )
            return None
        try:
            pool.submit(_invoke_worker, (_probe_worker, None)).result()
        except BaseException as exc:
            pool.shutdown(wait=False)
            log.warning(
                "worker process pool failed its probe task (%s: %s); "
                "falling back to threads",
                type(exc).__name__,
                exc,
            )
            return None
        return BlockProcessPool(pool)

    # ------------------------------------------------------------------ #
    # Cluster makespan models
    # ------------------------------------------------------------------ #
    def compression_makespan(
        self,
        per_file_times_s: Sequence[float],
        per_file_output_bytes: Sequence[int],
        nodes: int,
        cores_per_node: int,
        time_scale: float = 1.0,
    ) -> MakespanEstimate:
        """Makespan of a parallel compression job.

        Reads are cheap relative to compression compute, so the model is
        compute-bound: LPT scheduling of the per-file times over the
        effective core count, plus node start-up and the (rarely binding)
        output-write time.
        """
        times = [t * time_scale for t in per_file_times_s]
        if nodes < 1 or cores_per_node < 1:
            raise ConfigurationError("nodes and cores_per_node must be >= 1")
        effective_cores = max(1, int(nodes * cores_per_node * self.cost_model.parallel_efficiency))
        cores_used = min(effective_cores, max(1, len(times)))
        compute = _lpt_makespan(times, effective_cores)
        writers = min(cores_used, len(times)) if times else 1
        io_time = sum(per_file_output_bytes) / self.cost_model.write_bandwidth(writers)
        makespan = compute + io_time + self.cost_model.startup_s_per_node * nodes
        return MakespanEstimate(
            makespan_s=float(makespan),
            compute_s=float(sum(times)),
            io_s=float(io_time),
            cores_used=cores_used,
            nodes=nodes,
            files=len(times),
        )

    def decompression_makespan(
        self,
        per_file_times_s: Sequence[float],
        per_file_output_bytes: Sequence[int],
        nodes: int,
        cores_per_node: int,
        time_scale: float = 1.0,
    ) -> MakespanEstimate:
        """Makespan of a parallel decompression job.

        Every worker writes its reconstructed (full-size) output back to
        the shared parallel filesystem, so write contention grows with the
        number of active cores; beyond a few nodes the I/O term dominates
        and adding nodes makes the job slower (Fig. 9 right).
        """
        times = [t * time_scale for t in per_file_times_s]
        if nodes < 1 or cores_per_node < 1:
            raise ConfigurationError("nodes and cores_per_node must be >= 1")
        effective_cores = max(1, int(nodes * cores_per_node * self.cost_model.parallel_efficiency))
        cores_used = min(effective_cores, max(1, len(times)))
        compute = _lpt_makespan(times, effective_cores)
        writers = cores_used
        io_time = sum(per_file_output_bytes) / self.cost_model.write_bandwidth(writers)
        makespan = compute + io_time + self.cost_model.startup_s_per_node * nodes
        return MakespanEstimate(
            makespan_s=float(makespan),
            compute_s=float(sum(times)),
            io_s=float(io_time),
            cores_used=cores_used,
            nodes=nodes,
            files=len(times),
        )

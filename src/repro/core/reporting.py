"""Transfer reports: per-phase timings and end-to-end comparisons.

Ocelot stores analytics about every transfer on the user's machine; the
report objects here are that record, and their fields line up with the
columns of Table VIII (T/Speed for NP/CP/OP, CPTime, DPTime, Total T,
performance gain).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional

from ..utils.sizes import format_bytes, format_duration, format_rate

__all__ = ["PhaseTimings", "TransferReport", "ModeComparison"]


@dataclass
class PhaseTimings:
    """Per-phase simulated durations of one Ocelot transfer."""

    node_wait_s: float = 0.0
    planning_s: float = 0.0
    compression_s: float = 0.0
    grouping_s: float = 0.0
    transfer_s: float = 0.0
    raw_transfer_s: float = 0.0
    decompression_s: float = 0.0
    #: Overlapped makespan of a streamed transfer.  When set, it replaces
    #: the serialized compression + transfer + decompression sum in
    #: ``total_s`` (those three still record what each phase would cost in
    #: isolation, so reports can show the overlap savings).
    streaming_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end duration.

        The sentinel overlaps raw transfer with node waiting, so the wait
        phase contributes ``max(node_wait, raw transfer)``.  A streamed
        transfer overlaps compression, WAN transfer and decompression, so
        its makespan (``streaming_s``) replaces their sum; the bulk path
        keeps the paper's sequential Total T accounting.
        """
        waiting = max(self.node_wait_s, self.raw_transfer_s)
        if self.streaming_s > 0:
            pipeline = self.streaming_s
        else:
            pipeline = self.compression_s + self.transfer_s + self.decompression_s
        return waiting + self.planning_s + self.grouping_s + pipeline

    def as_dict(self) -> Dict[str, float]:
        """Return all phases plus the total as a dictionary."""
        data = asdict(self)
        data["total_s"] = self.total_s
        return data


@dataclass
class TransferReport:
    """Complete record of one dataset transfer."""

    dataset: str
    mode: str
    source: str
    destination: str
    file_count: int
    total_bytes: int
    transferred_files: int
    transferred_bytes: int
    compression_ratio: float
    timings: PhaseTimings
    direct_transfer_s: Optional[float] = None
    compressor: str = ""
    error_bound: str = ""
    transfer_mode: str = "bulk"
    predicted_quality: Optional[Dict[str, float]] = None
    measured_psnr_db: Optional[float] = None
    max_abs_error: Optional[float] = None
    notes: List[str] = field(default_factory=list)
    per_file: List[Dict[str, float]] = field(default_factory=list)
    #: Whole-blob cache outcome of the compress phase: files whose
    #: compressed bytes came straight from the content-addressed cache
    #: vs. files that were really compressed.  Both stay zero when the
    #: cache is off, which keeps ``cache_hit_rate`` ``None``.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Entropy stage(s) stamped into the produced blobs' metadata
    #: (comma-joined when a job mixes compressors), and the per-codec
    #: block counts aggregated across the job's blocked blobs — e.g.
    #: ``{"huffman": 12, "rans": 52}`` when the per-block codec choice
    #: split a file.  Empty/None for direct transfers and older blobs.
    entropy_stage: str = ""
    block_codecs: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    @property
    def total_s(self) -> float:
        """End-to-end duration of this transfer."""
        return self.timings.total_s

    @property
    def effective_speed_bps(self) -> float:
        """Original dataset bytes divided by the end-to-end time."""
        if self.total_s <= 0:
            return float("inf")
        return self.total_bytes / self.total_s

    @property
    def wire_speed_bps(self) -> float:
        """Bytes actually moved over the WAN divided by the transfer phase time."""
        if self.timings.transfer_s <= 0:
            return float("inf")
        return self.transferred_bytes / self.timings.transfer_s

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of files served from the blob cache (``None`` when off)."""
        total = self.cache_hits + self.cache_misses
        if total <= 0:
            return None
        return self.cache_hits / total

    @property
    def gain_vs_direct(self) -> Optional[float]:
        """The paper's "Reduced" column: ``(T_direct - Total T) / T_direct``."""
        if self.direct_transfer_s is None or self.direct_transfer_s <= 0:
            return None
        return (self.direct_transfer_s - self.total_s) / self.direct_transfer_s

    @property
    def speedup_vs_direct(self) -> Optional[float]:
        """End-to-end speed-up relative to the direct (no compression) transfer."""
        if self.direct_transfer_s is None or self.total_s <= 0:
            return None
        return self.direct_transfer_s / self.total_s

    def as_dict(self) -> Dict[str, object]:
        """Flatten the report to a dictionary (for JSON/analysis tooling)."""
        return {
            "dataset": self.dataset,
            "mode": self.mode,
            "source": self.source,
            "destination": self.destination,
            "file_count": self.file_count,
            "total_bytes": self.total_bytes,
            "transferred_files": self.transferred_files,
            "transferred_bytes": self.transferred_bytes,
            "compression_ratio": self.compression_ratio,
            "compressor": self.compressor,
            "error_bound": self.error_bound,
            "transfer_mode": self.transfer_mode,
            "timings": self.timings.as_dict(),
            "direct_transfer_s": self.direct_transfer_s,
            "total_s": self.total_s,
            "gain_vs_direct": self.gain_vs_direct,
            "measured_psnr_db": self.measured_psnr_db,
            "max_abs_error": self.max_abs_error,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "entropy_stage": self.entropy_stage,
            "block_codecs": dict(self.block_codecs) if self.block_codecs else None,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Transfer of {self.dataset!r}: {self.source} -> {self.destination} [{self.mode}]",
            f"  files: {self.file_count}  volume: {format_bytes(self.total_bytes)}"
            f"  wire volume: {format_bytes(self.transferred_bytes)}"
            f"  ratio: {self.compression_ratio:.2f}x",
            f"  phases: wait {format_duration(self.timings.node_wait_s)}"
            f" | compress {format_duration(self.timings.compression_s)}"
            f" | transfer {format_duration(self.timings.transfer_s)}"
            f" | decompress {format_duration(self.timings.decompression_s)}",
            f"  total: {format_duration(self.total_s)}"
            f"  effective: {format_rate(self.effective_speed_bps)}",
        ]
        if self.timings.streaming_s > 0:
            serialized = (
                self.timings.compression_s
                + self.timings.transfer_s
                + self.timings.decompression_s
            )
            lines.append(
                f"  streamed makespan: {format_duration(self.timings.streaming_s)}"
                f" (phases serialised would take {format_duration(serialized)})"
            )
        if self.direct_transfer_s is not None:
            gain = self.gain_vs_direct or 0.0
            lines.append(
                f"  direct transfer: {format_duration(self.direct_transfer_s)}"
                f"  reduction: {gain * 100:.0f}%"
            )
        if self.measured_psnr_db is not None:
            lines.append(f"  quality: PSNR {self.measured_psnr_db:.1f} dB")
        if self.entropy_stage:
            line = f"  entropy: {self.entropy_stage}"
            if self.block_codecs:
                split = ", ".join(
                    f"{codec}: {self.block_codecs[codec]}"
                    for codec in sorted(self.block_codecs)
                )
                line += f" (blocks by codec: {split})"
            lines.append(line)
        return "\n".join(lines)


@dataclass
class ModeComparison:
    """Reports for the same dataset/route under different transfer modes."""

    dataset: str
    source: str
    destination: str
    reports: Dict[str, TransferReport] = field(default_factory=dict)

    def add(self, report: TransferReport) -> None:
        """Record a report under its mode name."""
        self.reports[report.mode] = report

    def table_row(self) -> Dict[str, object]:
        """One Table VIII-style row comparing the recorded modes."""
        direct = self.reports.get("direct")
        compressed = self.reports.get("compressed")
        grouped = self.reports.get("grouped")
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "direction": f"{self.source}->{self.destination}",
        }
        if direct:
            row["T(NP)_s"] = round(direct.timings.transfer_s, 2)
            row["Speed(NP)_MBps"] = round(direct.wire_speed_bps / 1e6, 1)
        if compressed:
            row["T(CP)_s"] = round(compressed.timings.transfer_s, 2)
            row["Speed(CP)_MBps"] = round(compressed.wire_speed_bps / 1e6, 1)
        if grouped:
            row["T(OP)_s"] = round(grouped.timings.transfer_s, 2)
            row["Speed(OP)_MBps"] = round(grouped.wire_speed_bps / 1e6, 1)
        best = grouped or compressed
        if best:
            row["CPTime_s"] = round(best.timings.compression_s, 2)
            row["DPTime_s"] = round(best.timings.decompression_s, 2)
            row["TotalT_s"] = round(best.total_s, 2)
            if best.gain_vs_direct is not None:
                row["Reduced_pct"] = round(100 * best.gain_vs_direct, 1)
        return row

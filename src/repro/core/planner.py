"""Compression planning: choose the best-qualified configuration.

Capability 1 of the paper: before a transfer starts, the quality
predictor is run (remotely, via FuncX, on the endpoint where the data
live) against a handful of candidate configurations, and the best one
satisfying the user's quality requirement is selected.  Users who know
their configuration can bypass the predictor entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..compression import ErrorBound
from ..datasets.base import Field
from ..errors import OrchestrationError
from ..prediction.quality_model import QualityPrediction, QualityPredictor
from .config import OcelotConfig

__all__ = ["CompressionPlan", "CompressionPlanner"]


@dataclass
class CompressionPlan:
    """The configuration a transfer will use for compression."""

    compressor: str
    error_bound: ErrorBound
    predicted: Optional[QualityPrediction] = None
    used_predictor: bool = False

    def describe(self) -> str:
        """Short human-readable description of the plan."""
        base = f"{self.compressor} @ {self.error_bound.describe()}"
        if self.predicted is not None:
            base += (
                f" (predicted ratio {self.predicted.compression_ratio:.1f}x,"
                f" PSNR {self.predicted.psnr_db:.1f} dB)"
            )
        return base


class CompressionPlanner:
    """Select the compression configuration for a dataset transfer."""

    def __init__(
        self,
        config: OcelotConfig,
        predictor: Optional[QualityPredictor] = None,
    ) -> None:
        self.config = config
        self.predictor = predictor

    def plan(
        self,
        representative: Optional[Field] = None,
        candidate_error_bounds: Optional[Sequence[float]] = None,
        compressors: Optional[Sequence[str]] = None,
    ) -> CompressionPlan:
        """Build the compression plan.

        When prediction is enabled (and a fitted predictor plus a
        representative field are available), the planner sweeps the
        candidate configurations and picks the highest-ratio one whose
        predicted PSNR clears ``config.min_psnr_db``; otherwise the fixed
        configuration from :class:`OcelotConfig` is used.
        """
        use_prediction = (
            self.config.use_prediction
            and self.predictor is not None
            and self.predictor.is_fitted
            and representative is not None
        )
        if not use_prediction:
            if self.config.use_prediction and self.predictor is None:
                raise OrchestrationError(
                    "use_prediction is enabled but no fitted quality predictor was provided"
                )
            return CompressionPlan(
                compressor=self.config.compressor,
                error_bound=self.config.resolved_error_bound(),
                used_predictor=False,
            )
        bounds = list(candidate_error_bounds or self.config.candidate_error_bounds)
        names = list(compressors or [self.config.compressor])
        data = np.asarray(representative.data)
        best = self.predictor.recommend(
            data,
            error_bounds=bounds,
            compressors=names,
            min_psnr_db=self.config.min_psnr_db,
        )
        # Convert the winning absolute bound back to a relative request so
        # each file of the dataset resolves it against its own value range
        # (the paper's bounds are value-range relative).
        rng = float(data.max() - data.min())
        rel_value = best.error_bound_abs / rng if rng > 0 else self.config.error_bound
        rel_value = min(max(rel_value, 1e-12), 1.0)
        return CompressionPlan(
            compressor=best.compressor,
            error_bound=ErrorBound.relative(rel_value),
            predicted=best,
            used_predictor=True,
        )

"""Phase steps: the resumable units an orchestrated transfer is made of.

The orchestrator expresses one dataset transfer as a generator of
:class:`PhaseStep` descriptors (stage → plan → wait → compress → group →
transfer → decompress).  Driving the generator straight through
reproduces the classic blocking ``OcelotOrchestrator.run``; suspending
it at each yield is what lets the :class:`~repro.service.JobScheduler`
interleave many concurrent jobs over one shared testbed, charging each
step against the compute-node and WAN-link resources it occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["PhaseStep", "PHASE_ORDER"]

#: Canonical phase names in execution order (streamed runs collapse the
#: compress/transfer/decompress pipeline into a single ``stream`` phase).
PHASE_ORDER: Tuple[str, ...] = (
    "stage",
    "plan",
    "wait",
    "compress",
    "stream",
    "group",
    "transfer",
    "decompress",
)


@dataclass
class PhaseStep:
    """One completed phase of a transfer job.

    The orchestrator performs the phase's real work (compression,
    file-system writes, duration modelling) *before* yielding the step;
    the step records what the driver needs for time accounting:

    Attributes:
        name: phase name (one of :data:`PHASE_ORDER`).
        duration_s: simulated duration of the phase for this job.
        endpoint: endpoint whose compute resources the phase occupies
            (``None`` for phases that hold no nodes).
        nodes: compute nodes held for the duration of the phase.
        link: ``(source, destination)`` WAN link the phase occupies, or
            ``None`` for local phases.
        detail: structured facts about the phase (bytes compressed,
            bytes shipped, per-file progress, ...) used for the job
            event feed.
    """

    name: str
    duration_s: float = 0.0
    endpoint: Optional[str] = None
    nodes: int = 0
    link: Optional[Tuple[str, str]] = None
    detail: Dict[str, object] = field(default_factory=dict)

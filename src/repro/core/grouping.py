"""File grouping: pack many small compressed files into a few large ones.

Table II shows that effective WAN throughput collapses when the same
volume is split into many small files; compressing files makes them
small.  Ocelot therefore groups compressed files before transferring
(Fig. 11): each group file carries a binary header describing member
offsets/sizes, and a human-readable metadata text file accompanies the
groups so the receiver knows how to decompress and restore filenames.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GroupingError

__all__ = ["GroupMember", "GroupFile", "FileGrouper", "GroupingPlan"]

_MAGIC = b"OCGF"
_HEADER_STRUCT = struct.Struct("<4sI")


@dataclass(frozen=True)
class GroupMember:
    """One member file inside a group."""

    name: str
    offset: int
    size: int


@dataclass
class GroupFile:
    """A packed group: header + concatenated member payloads."""

    name: str
    members: List[GroupMember]
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Total serialised size of the group file."""
        return len(self.payload)

    @property
    def member_count(self) -> int:
        """Number of member files in the group."""
        return len(self.members)


@dataclass
class GroupingPlan:
    """Description of how files were assigned to groups."""

    strategy: str
    group_sizes: List[int] = field(default_factory=list)
    member_names: Dict[str, List[str]] = field(default_factory=dict)

    def metadata_text(self) -> str:
        """The human-readable metadata file contents (Fig. 11)."""
        lines = [
            "# Ocelot grouped-transfer metadata",
            f"strategy: {self.strategy}",
            f"groups: {len(self.group_sizes)}",
            f"total_members: {sum(len(v) for v in self.member_names.values())}",
        ]
        for group_name in sorted(self.member_names):
            members = self.member_names[group_name]
            lines.append(f"[{group_name}] members={len(members)}")
            lines.extend(f"  {name}" for name in members)
        return "\n".join(lines) + "\n"


class FileGrouper:
    """Pack and unpack group files."""

    def pack(self, files: Sequence[Tuple[str, bytes]], group_name: str) -> GroupFile:
        """Pack ``(name, payload)`` pairs into one group file."""
        if not files:
            raise GroupingError("cannot pack an empty group")
        members: List[GroupMember] = []
        body = bytearray()
        for name, payload in files:
            members.append(GroupMember(name=name, offset=len(body), size=len(payload)))
            body.extend(payload)
        header = json.dumps(
            {
                "members": [
                    {"name": m.name, "offset": m.offset, "size": m.size} for m in members
                ]
            }
        ).encode("utf-8")
        blob = _HEADER_STRUCT.pack(_MAGIC, len(header)) + header + bytes(body)
        return GroupFile(name=group_name, members=members, payload=blob)

    def unpack(self, payload: bytes) -> List[Tuple[str, bytes]]:
        """Invert :meth:`pack`, returning the member ``(name, payload)`` pairs."""
        if len(payload) < _HEADER_STRUCT.size:
            raise GroupingError("group file too small to contain a header")
        magic, header_len = _HEADER_STRUCT.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise GroupingError("not an Ocelot group file (bad magic)")
        header_start = _HEADER_STRUCT.size
        header_end = header_start + header_len
        if header_end > len(payload):
            raise GroupingError("truncated group file header")
        header = json.loads(payload[header_start:header_end].decode("utf-8"))
        body = payload[header_end:]
        out: List[Tuple[str, bytes]] = []
        for member in header.get("members", []):
            start = int(member["offset"])
            end = start + int(member["size"])
            if end > len(body):
                raise GroupingError(f"member {member['name']!r} extends past group payload")
            out.append((member["name"], bytes(body[start:end])))
        return out

    # ------------------------------------------------------------------ #
    # Grouping strategies
    # ------------------------------------------------------------------ #
    def assign_by_world_size(
        self, files: Sequence[Tuple[str, int]], world_size: int
    ) -> List[List[str]]:
        """Group files by compression "world size" (cores per MPI job).

        Files compressed by the same wave of ranks finish at roughly the
        same time, so each wave's outputs form one group — the paper's
        default strategy.
        """
        if world_size < 1:
            raise GroupingError("world size must be >= 1")
        names = [name for name, _ in files]
        return [names[i : i + world_size] for i in range(0, len(names), world_size)]

    def assign_by_target_bytes(
        self, files: Sequence[Tuple[str, int]], target_bytes: int
    ) -> List[List[str]]:
        """Group files so each group is roughly ``target_bytes`` large.

        Used when the administrator-provided profile says which file size
        transfers fastest on the route.
        """
        if target_bytes <= 0:
            raise GroupingError("target bytes must be positive")
        groups: List[List[str]] = []
        current: List[str] = []
        current_bytes = 0
        for name, size in files:
            if current and current_bytes + size > target_bytes:
                groups.append(current)
                current = []
                current_bytes = 0
            current.append(name)
            current_bytes += size
        if current:
            groups.append(current)
        return groups

    def build_groups(
        self,
        files: Sequence[Tuple[str, bytes]],
        world_size: Optional[int] = None,
        target_bytes: Optional[int] = None,
        prefix: str = "group",
    ) -> Tuple[List[GroupFile], GroupingPlan]:
        """Assign files to groups and pack them.

        Exactly one of ``world_size`` / ``target_bytes`` selects the
        strategy; when both are given ``target_bytes`` wins (profile-driven
        grouping), and when neither is given a single-group fallback is
        used.
        """
        sizes = [(name, len(payload)) for name, payload in files]
        if target_bytes is not None:
            assignment = self.assign_by_target_bytes(sizes, target_bytes)
            strategy = f"target_bytes={target_bytes}"
        elif world_size is not None:
            assignment = self.assign_by_world_size(sizes, world_size)
            strategy = f"world_size={world_size}"
        else:
            assignment = [[name for name, _ in sizes]]
            strategy = "single_group"
        payload_by_name = dict(files)
        groups: List[GroupFile] = []
        plan = GroupingPlan(strategy=strategy)
        for index, names in enumerate(assignment):
            group_name = f"{prefix}_{index:05d}.ocgrp"
            members = [(name, payload_by_name[name]) for name in names]
            group = self.pack(members, group_name)
            groups.append(group)
            plan.group_sizes.append(group.size_bytes)
            plan.member_names[group_name] = list(names)
        return groups, plan

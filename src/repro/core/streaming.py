"""Streaming block pipeline: overlap compress → WAN → decode.

The bulk path runs strictly phase-serialised — compress every file, then
submit one transfer, then decompress — so its makespan is the *sum* of
the phases.  This module drives the same real work through a
produce/ship/consume pipeline instead: each ``block:<id>`` section ships
over a :class:`~repro.transfer.service.TransferStream` the moment it
finishes encoding, the destination decodes each block as it arrives
(random access, no full-blob parse), and a bounded in-flight window
applies back-pressure so a slow WAN throttles the producers instead of
buffering the whole dataset.  The simulated makespan is then the *max*
of the overlapped phases plus pipeline fill/drain, which is the paper's
end-to-end win.

Real work still happens: blocks are genuinely encoded and decoded, the
destination assembles a valid v2 blob from the received sections, and
reconstruction quality is measured against the originals.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..compression import CompressedBlob, Compressor
from ..compression.blocking import BlockSpec
from ..compression.sz.pipeline import PredictionPipelineCompressor
from ..errors import OrchestrationError
from ..transfer.service import TransferStream
from ..utils.stats import psnr as compute_psnr
from .config import OcelotConfig
from .parallel import ParallelCostModel, _lpt_makespan

__all__ = ["StreamedFileResult", "StreamingOutcome", "StreamingPipeline"]


@dataclass
class StreamedFileResult:
    """Outcome of streaming one file end to end."""

    name: str
    path: str
    blob_bytes: int
    num_blocks: int
    psnr_db: Optional[float] = None
    max_abs_error: Optional[float] = None


@dataclass
class StreamingOutcome:
    """Timeline and quality results of one streamed dataset transfer.

    ``compression_s`` / ``transfer_s`` / ``decompression_s`` are the
    *standalone* spans each phase would need in isolation (what the bulk
    path sums); ``streaming_s`` is the overlapped end-to-end makespan.
    """

    files: List[StreamedFileResult] = field(default_factory=list)
    chunk_count: int = 0
    compression_s: float = 0.0
    transfer_s: float = 0.0
    decompression_s: float = 0.0
    streaming_s: float = 0.0
    original_bytes: int = 0
    compressed_bytes: int = 0
    transferred_bytes: int = 0
    stalled_s: float = 0.0

    @property
    def ratio(self) -> float:
        """Compression ratio achieved over the streamed files."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def serialized_sum_s(self) -> float:
        """What the same phases would cost run one after another."""
        return self.compression_s + self.transfer_s + self.decompression_s

    @property
    def overlap_savings_s(self) -> float:
        """Simulated time saved versus running the phases serially."""
        return max(0.0, self.serialized_sum_s - self.streaming_s)

    def quality(self) -> Dict[str, float]:
        """Aggregate reconstruction quality across streamed files."""
        psnrs = [f.psnr_db for f in self.files if f.psnr_db is not None and np.isfinite(f.psnr_db)]
        errors = [f.max_abs_error for f in self.files if f.max_abs_error is not None]
        out: Dict[str, float] = {}
        if psnrs:
            out["psnr"] = float(np.mean(psnrs))
        if errors:
            out["max_abs_error"] = float(np.max(errors))
        return out


@dataclass
class _PendingBlock:
    """One block travelling through the pipeline."""

    file_index: int
    entry: Dict[str, Any]
    payload: bytes
    encode_s: float
    ready_at: float = 0.0
    arrived_at: float = 0.0


class StreamingPipeline:
    """Drive produce(compress block) → ship(chunk) → consume(decode block).

    The pipeline is clocked by the shared simulation clock: producer
    "workers" model the compression job's cores, the stream models the
    WAN channels, and consumer workers model the decompression job.  The
    in-flight window (``OcelotConfig.stream_window``) bounds how many
    blocks may be encoded but not yet fully received.
    """

    def __init__(
        self,
        config: OcelotConfig,
        testbed,
        build_compressor,
        compression_nodes: Optional[int] = None,
        cost_model: Optional[ParallelCostModel] = None,
    ) -> None:
        self.config = config
        self.testbed = testbed
        self._build_compressor = build_compressor
        self._compression_nodes = compression_nodes or config.compression_nodes
        self.cost_model = cost_model or ParallelCostModel()

    # ------------------------------------------------------------------ #
    def _worker_count(self, nodes: int) -> int:
        return max(
            1,
            int(nodes * self.config.cores_per_node * self.cost_model.parallel_efficiency),
        )

    def _scaled_encode_time(self, measured_s: float, nominal_bytes: int) -> float:
        if self.config.assumed_compression_throughput_mbps:
            return nominal_bytes / (self.config.assumed_compression_throughput_mbps * 1e6)
        return measured_s * self.config.resolved_work_time_scale()

    def _scaled_decode_time(
        self, measured_s: float, nominal_bytes: int, writers: int = 1
    ) -> float:
        """Simulated cost of decoding one block, including the PFS write-back.

        Every decoded block is written to the destination's shared parallel
        filesystem, so the same write-contention model the bulk
        decompression makespan applies is charged per block here:
        ``write_bandwidth(writers)`` is the *aggregate* the contending
        writers share, so one block moving concurrently with ``writers - 1``
        others gets a 1/``writers`` fair share of it.
        """
        if self.config.assumed_decompression_throughput_mbps:
            compute = nominal_bytes / (self.config.assumed_decompression_throughput_mbps * 1e6)
        else:
            compute = measured_s * self.config.resolved_work_time_scale()
        share = self.cost_model.write_bandwidth(writers) / max(1, writers)
        return compute + nominal_bytes / share

    # ------------------------------------------------------------------ #
    def run(
        self,
        dataset_name: str,
        staged,
        plan,
        source: str,
        destination: str,
    ) -> StreamingOutcome:
        """Stream ``staged`` files from ``source`` to ``destination``.

        ``plan`` is the planner's :class:`CompressionPlan` (compressor
        name + error bound).  Returns the streaming outcome; the shared
        clock ends at the overlapped makespan's finish time.
        """
        if not staged:
            return StreamingOutcome()
        clock = self.testbed.clock
        t_origin = clock.now
        outcome = StreamingOutcome()
        stream: TransferStream = self.testbed.service.open_stream(
            source,
            destination,
            destination_prefix=self.config.destination_prefix,
            label=f"{dataset_name}:streamed",
        )

        # Compute nodes pay the same start-up cost as the bulk makespan
        # models before the first block can encode/decode.
        produce_start = t_origin + self.cost_model.startup_s_per_node * self._compression_nodes
        producer_workers = self._worker_count(self._compression_nodes)
        producers = [produce_start] * producer_workers
        heapq.heapify(producers)

        src_endpoint = self.testbed.endpoint(source)
        window = max(1, self.config.stream_window)
        sent_chunks: List[Any] = []
        headers: List[Dict[str, Any]] = []
        file_blocks: List[List[_PendingBlock]] = []
        encode_times: List[float] = []
        stall_s = 0.0

        # ---------------- produce + ship ------------------------------- #
        for file_index, staged_file in enumerate(staged):
            compressor = self._build_compressor(plan.compressor)
            arr = np.asarray(staged_file.field.data)
            if not np.issubdtype(arr.dtype, np.floating):
                arr = arr.astype(np.float32)
            eb_abs = plan.error_bound.absolute_for(arr)
            per_file: List[_PendingBlock] = []
            for entry, payload, encode_s, header in self._encode_file(
                compressor, arr, eb_abs
            ):
                nominal = int(
                    spec_nbytes(entry, arr.dtype) * self.config.size_scale
                )
                scaled_encode = self._scaled_encode_time(encode_s, nominal)
                encode_times.append(scaled_encode)
                # Back-pressure: block k may not start encoding until the
                # (k - window)-th chunk has fully left the wire.
                gate = 0.0
                if len(sent_chunks) >= window:
                    gate = sent_chunks[len(sent_chunks) - window].completed_at
                worker_free = heapq.heappop(producers)
                start = max(worker_free, gate, produce_start)
                stall_s += max(0.0, gate - worker_free)
                ready = start + scaled_encode
                heapq.heappush(producers, ready)

                # Only the chunk's wire size matters to the simulation; the
                # block bytes for destination-side assembly travel via
                # ``_PendingBlock``, so buffering the message here too would
                # double peak memory for nothing.
                message_size = stream_block_message_size(header, entry, payload)
                chunk = stream.send_chunk(
                    name=f"/compressed/{dataset_name}/{staged_file.field.filename}.sz"
                    f"#block{entry['id']}",
                    size_bytes=int(message_size * self.config.size_scale),
                    available_at=ready,
                )
                sent_chunks.append(chunk)
                pending = _PendingBlock(
                    file_index=file_index,
                    entry=entry,
                    payload=payload,
                    encode_s=scaled_encode,
                    ready_at=ready,
                    arrived_at=chunk.completed_at,
                )
                per_file.append(pending)
            headers.append(header)
            file_blocks.append(per_file)
            outcome.original_bytes += staged_file.size_bytes
        stream.close(materialize=False)
        task = stream.task
        outcome.chunk_count = len(sent_chunks)
        outcome.transferred_bytes = task.bytes_transferred
        outcome.stalled_s = stall_s

        # ---------------- consume: assemble + random-access decode ----- #
        dst_endpoint = self.testbed.endpoint(destination)
        decode_workers = self._worker_count(self.config.decompression_nodes)
        consume_start = (
            t_origin + self.cost_model.startup_s_per_node * self.config.decompression_nodes
        )
        consumers = [consume_start] * decode_workers
        heapq.heapify(consumers)
        decode_times: List[float] = []
        makespan_end = stream.last_completion_s

        for file_index, staged_file in enumerate(staged):
            per_file = file_blocks[file_index]
            header = headers[file_index]
            blob, recon, file_decode_times = self._consume_file(
                header, per_file, writers=decode_workers
            )
            decode_times.extend(file_decode_times)
            for pending, decode_s in zip(per_file, file_decode_times):
                consumer_free = heapq.heappop(consumers)
                start = max(consumer_free, pending.arrived_at)
                finish = start + decode_s
                heapq.heappush(consumers, finish)
                makespan_end = max(makespan_end, finish)

            payload = blob.to_bytes()
            path = f"/compressed/{dataset_name}/{staged_file.field.filename}.sz"
            scaled_len = int(len(payload) * self.config.size_scale)
            src_endpoint.filesystem.write(path, data=payload, size_bytes=scaled_len)
            dst_endpoint.filesystem.write(
                f"{self.config.destination_prefix}{path}"
                if self.config.destination_prefix
                else path,
                data=payload,
                size_bytes=scaled_len,
            )
            outcome.compressed_bytes += scaled_len

            result = StreamedFileResult(
                name=staged_file.field.filename,
                path=path,
                blob_bytes=scaled_len,
                num_blocks=len(per_file),
            )
            original = np.asarray(staged_file.field.data, dtype=np.float64)
            if recon is not None and original.shape == recon.shape:
                recon64 = np.asarray(recon, dtype=np.float64)
                result.psnr_db = compute_psnr(original, recon64)
                result.max_abs_error = float(np.max(np.abs(original - recon64)))
            dst_endpoint.filesystem.write(
                f"/decompressed/{dataset_name}/{staged_file.field.filename}",
                size_bytes=int(recon.nbytes * self.config.size_scale),
            )
            outcome.files.append(result)

        # ---------------- phase-equivalent spans ----------------------- #
        # Mirror the bulk compression makespan's accounting (compute + the
        # PFS write of the compressed output + node start-up) so the
        # streamed and bulk compression_s columns are comparable.
        compress_writers = max(1, min(producer_workers, len(sent_chunks)))
        compress_io = outcome.transferred_bytes / self.cost_model.write_bandwidth(
            compress_writers
        )
        outcome.compression_s = (
            (produce_start - t_origin)
            + _lpt_makespan(encode_times, producer_workers)
            + compress_io
        )
        first_start = min((c.started_at for c in sent_chunks), default=t_origin)
        outcome.transfer_s = max(0.0, stream.last_completion_s - first_start)
        outcome.decompression_s = (consume_start - t_origin) + _lpt_makespan(
            decode_times, decode_workers
        )
        outcome.streaming_s = max(0.0, makespan_end - t_origin)
        clock.advance_to(makespan_end)
        clock.record(f"streamed:done:{dataset_name}")
        return outcome

    # ------------------------------------------------------------------ #
    def _encode_file(self, compressor: Compressor, arr: np.ndarray, eb_abs: float):
        """Yield ``(entry, payload, encode_s, blob_header)`` per block.

        Blocked pipelines emit one tuple per block as each finishes
        encoding; any other compressor degrades to a single whole-file
        chunk, so streaming still overlaps across files.
        """
        if (
            isinstance(compressor, PredictionPipelineCompressor)
            and compressor.block_shape is not None
        ):
            block_plan = compressor.block_plan(arr)
            # The blob header ships before the first block, so the shared
            # codebook is seeded from a sample of blocks rather than the
            # exact all-block frequencies the bulk path pools; blocks
            # whose alphabet escapes it fall back to per-block codebooks.
            shared_book = compressor.prepare_shared_codebook(arr, block_plan, eb_abs)
            header = compressor.blocked_header(
                arr, block_plan, eb_abs, shared_book=shared_book
            )
            for spec in block_plan:
                start = time.perf_counter()
                entry, payload = compressor.encode_one_block(
                    arr, block_plan, spec, eb_abs, shared_book=shared_book
                )
                elapsed = time.perf_counter() - start
                yield entry, payload, elapsed, header
        else:
            start = time.perf_counter()
            blob = compressor.compress_array(arr, eb_abs)
            elapsed = time.perf_counter() - start
            payload = blob.to_bytes()
            # A whole-file chunk: the "entry" spans the full array so the
            # consumer can rebuild it with the same assembly code path.
            entry = {
                "id": 0,
                "origin": [0] * arr.ndim,
                "shape": list(arr.shape),
                "predictor": blob.metadata.get("predictor", ""),
                "section": "whole",
            }
            header = {"whole_blob": True, "compressor": blob.compressor}
            yield entry, payload, elapsed, header

    def _consume_file(
        self, header: Dict[str, Any], per_file: List[_PendingBlock], writers: int = 1
    ) -> Tuple[CompressedBlob, np.ndarray, List[float]]:
        """Assemble the destination-side blob and decode it block by block.

        Returns the assembled blob, the full reconstruction, and the
        measured (scaled) per-block decode times.
        """
        decode_times: List[float] = []
        if header.get("whole_blob"):
            payload = per_file[0].payload
            start = time.perf_counter()
            blob = CompressedBlob.from_bytes(payload)
            decompressor = self._build_compressor(blob.compressor)
            recon = decompressor.decompress(blob)
            elapsed = time.perf_counter() - start
            decode_times.append(
                self._scaled_decode_time(
                    elapsed, int(recon.nbytes * self.config.size_scale), writers
                )
            )
            return blob, recon, decode_times
        blob = CompressedBlob.assemble(
            header, [(p.entry, p.payload) for p in per_file]
        )
        decompressor = self._build_compressor(blob.compressor)
        if not isinstance(decompressor, PredictionPipelineCompressor):
            raise OrchestrationError(
                f"streamed blob produced by {blob.compressor!r} cannot be decoded per block"
            )
        out = np.empty(blob.shape, dtype=np.float64)
        for pending in per_file:
            spec = BlockSpec.from_dict(pending.entry)
            start = time.perf_counter()
            recon = decompressor.decompress_block(blob, spec.block_id)
            elapsed = time.perf_counter() - start
            out[spec.slices()] = recon
            decode_times.append(
                self._scaled_decode_time(
                    elapsed,
                    int(spec.num_elements * np.dtype(blob.dtype).itemsize * self.config.size_scale),
                    writers,
                )
            )
        return blob, out.astype(np.dtype(blob.dtype), copy=False), decode_times


def spec_nbytes(entry: Dict[str, Any], dtype: np.dtype) -> int:
    """Uncompressed byte size of the block an index entry describes."""
    count = 1
    for dim in entry["shape"]:
        count *= int(dim)
    return count * np.dtype(dtype).itemsize


def stream_block_message_size(
    blob_header: Dict[str, Any], entry: Dict[str, Any], payload: bytes
) -> int:
    """Wire size of one block's stream message, without materialising it."""
    from ..compression.interface import SectionContainer

    message = SectionContainer(
        header={"stream_block": dict(entry), "blob_header": dict(blob_header)}
    )
    message.add_section("payload", payload)
    return message.serialized_size()

"""Ocelot configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..compression.errorbound import ErrorBound, ErrorBoundMode
from ..errors import ConfigurationError
from .parallel import VALID_WORKER_BACKENDS

__all__ = ["OcelotConfig", "TransferMode"]

#: Transfer modes matching the paper's Table VIII columns.
#:  * ``direct``      — NP: no compression.
#:  * ``compressed``  — CP: per-file parallel compression.
#:  * ``grouped``     — OP: parallel compression + file grouping.
TransferMode = str
VALID_MODES: Tuple[str, ...] = ("direct", "compressed", "grouped")

#: How compressed data moves over the WAN.
#:  * ``bulk``     — phase-serialised: compress all, transfer all, decode all.
#:  * ``streamed`` — pipeline blocks through a transfer stream as each
#:    finishes encoding, with random-access decode at the destination.
VALID_TRANSFER_MODES: Tuple[str, ...] = ("bulk", "streamed")

#: Content-addressed blob cache modes.
#:  * ``off``       — no cache lookups or writes.
#:  * ``read``      — consult a warm cache, never grow it.
#:  * ``readwrite`` — consult and populate.
VALID_CACHE_MODES: Tuple[str, ...] = ("off", "read", "readwrite")

#: Strict priority classes of the multi-tenant job scheduler, lowest to
#: highest.  A higher class always dispatches before a lower one;
#: weighted fair queueing applies among tenants *within* a class.
VALID_PRIORITIES: Tuple[str, ...] = ("low", "normal", "high")

#: Entropy-stage overrides accepted by ``entropy_stage`` / ``--entropy``
#: (``None`` keeps each compressor's registered default).
VALID_ENTROPY_STAGES: Tuple[str, ...] = ("huffman", "rans", "none")


@dataclass
class OcelotConfig:
    """User-facing configuration of an Ocelot transfer.

    Attributes:
        error_bound: error-bound value (interpreted per ``error_bound_mode``).
        error_bound_mode: ``rel`` (value-range relative, paper default) or ``abs``.
        compressor: registry name of the compressor to use.
        mode: default transfer mode (``direct`` / ``compressed`` / ``grouped``).
        use_prediction: when True the quality predictor selects the error
            bound / compressor automatically (Capability 1 of the paper).
        candidate_error_bounds: candidate relative bounds for the planner sweep.
        min_psnr_db: quality floor used by the planner.
        compression_nodes / decompression_nodes: node counts for the
            parallel (de)compression jobs (paper: 16 nodes to compress on
            Anvil, 8 to decompress on Bebop/Cori).
        cores_per_node: cores used per node.
        group_target_bytes: preferred grouped-file size; ``None`` groups by
            world size (the paper's default strategy).
        sentinel_enabled: transfer raw files while waiting for nodes.
        sentinel_wait_threshold_s: minimum predicted wait before the
            sentinel starts transferring raw data.
        verify_error_bound: decompress-and-check after compression.
        sample_fraction: subsampling used by feature extraction.
        block_size: when set, each file is partitioned into blocks of this
            edge length (per axis) and the blocks are compressed
            independently (blob format v2); ``None`` keeps the whole-array
            pipeline.
        block_workers: local workers used to (de)compress the blocks of
            one file concurrently.
        worker_backend: how block workers run — ``thread`` (default)
            shares the GIL but starts instantly; ``process`` fans blocks
            out over worker processes (input shipped via shared memory)
            so the pure-Python parts of the encode path scale past the
            GIL, falling back to threads when a pool cannot start.
        adaptive_predictor: per-block SZ3-style predictor selection (try
            Lorenzo vs. interpolation per block, keep the smaller).
        entropy_stage: entropy codec override for pipeline compressors —
            ``huffman``, ``rans`` (interleaved range ANS) or ``none``
            (bypass).  ``None`` keeps each pipeline's registered default.
            In adaptive blocked mode with per-block codebooks the codec
            is additionally chosen per block (learned policy or
            size-estimate heuristic), recorded per section so mixed
            blobs decode anywhere.
        shared_codebook: in blocked entropy-coded mode, build one entropy
            model per file (a Huffman codebook or rANS frequency table,
            pooled across blocks) and store it once in the blob header
            instead of once per block; blocks whose alphabet escapes the
            shared model fall back to per-block models automatically.
        transfer_mode: ``bulk`` keeps the phase-serialised baseline;
            ``streamed`` ships each block as it finishes encoding and
            decodes blocks as they arrive (compressed mode only).
        stream_window: bounded in-flight window of the streamed pipeline —
            the maximum number of blocks encoded but not yet fully
            received before the producers stall.
        block_policy_path: path to a trained
            :class:`~repro.prediction.block_policy.BlockPolicy`; when set
            (with ``adaptive_predictor``), per-block predictor selection
            uses the learned policy instead of brute-forcing every
            candidate.
        cache_dir: directory of the content-addressed blob/block cache
            shared across jobs and tenants; required whenever
            ``cache_mode`` is not ``off``.
        cache_mode: ``off`` (default) disables caching, ``read`` consults
            a warm cache without growing it, ``readwrite`` populates it.
        cache_max_bytes: size cap of the cache directory; exceeding it
            evicts least-recently-used entries after each store.  ``None``
            leaves the cache unbounded.
        tenant: default tenant jobs submitted under this configuration
            belong to (a :class:`~repro.service.spec.TransferSpec` may
            name its own).  Tenants are the unit of weighted fair
            queueing and admission quotas in the job scheduler.
        priority: default scheduler priority class (``low`` / ``normal``
            / ``high``); higher classes dispatch strictly before lower
            ones.
    """

    error_bound: float = 1e-3
    error_bound_mode: str = "rel"
    compressor: str = "sz3-fast"
    mode: TransferMode = "grouped"
    use_prediction: bool = False
    candidate_error_bounds: Sequence[float] = (1e-5, 1e-4, 1e-3, 1e-2)
    min_psnr_db: float = 60.0
    compression_nodes: int = 16
    decompression_nodes: int = 8
    cores_per_node: int = 128
    group_target_bytes: Optional[int] = None
    group_world_size: int = 256
    sentinel_enabled: bool = True
    sentinel_wait_threshold_s: float = 5.0
    verify_error_bound: bool = False
    sample_fraction: float = 0.01
    block_size: Optional[int] = None
    block_workers: int = 1
    worker_backend: str = "thread"
    adaptive_predictor: bool = False
    entropy_stage: Optional[str] = None
    shared_codebook: bool = True
    transfer_mode: str = "bulk"
    stream_window: int = 8
    block_policy_path: Optional[str] = None
    cache_dir: Optional[str] = None
    cache_mode: str = "off"
    cache_max_bytes: Optional[int] = None
    tenant: str = "default"
    priority: str = "normal"
    size_scale: float = 1.0
    work_time_scale: Optional[float] = None
    assumed_compression_throughput_mbps: Optional[float] = None
    assumed_decompression_throughput_mbps: Optional[float] = None
    destination_prefix: str = ""

    def __post_init__(self) -> None:
        if self.mode not in VALID_MODES:
            raise ConfigurationError(
                f"mode must be one of {VALID_MODES}, got {self.mode!r}"
            )
        if self.error_bound <= 0:
            raise ConfigurationError("error_bound must be positive")
        if self.compression_nodes < 1 or self.decompression_nodes < 1:
            raise ConfigurationError("node counts must be >= 1")
        if self.cores_per_node < 1:
            raise ConfigurationError("cores_per_node must be >= 1")
        if self.group_world_size < 1:
            raise ConfigurationError("group_world_size must be >= 1")
        if not 0 < self.sample_fraction <= 1:
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError("block_size must be >= 1 (or None for whole-array)")
        if self.block_workers < 1:
            raise ConfigurationError("block_workers must be >= 1")
        if self.worker_backend not in VALID_WORKER_BACKENDS:
            raise ConfigurationError(
                f"worker_backend must be one of {VALID_WORKER_BACKENDS}, "
                f"got {self.worker_backend!r}"
            )
        if self.adaptive_predictor and not self.block_size:
            raise ConfigurationError(
                "adaptive_predictor requires block_size (per-block selection "
                "only applies in blocked mode)"
            )
        if self.entropy_stage is not None and self.entropy_stage not in VALID_ENTROPY_STAGES:
            raise ConfigurationError(
                f"entropy_stage must be one of {VALID_ENTROPY_STAGES} (or None "
                f"for the compressor's default), got {self.entropy_stage!r}"
            )
        if self.transfer_mode not in VALID_TRANSFER_MODES:
            raise ConfigurationError(
                f"transfer_mode must be one of {VALID_TRANSFER_MODES}, "
                f"got {self.transfer_mode!r}"
            )
        if self.stream_window < 1:
            raise ConfigurationError("stream_window must be >= 1")
        if self.block_policy_path is not None and not self.adaptive_predictor:
            raise ConfigurationError(
                "block_policy_path requires adaptive_predictor (the policy "
                "replaces brute-force per-block predictor selection)"
            )
        if self.cache_mode not in VALID_CACHE_MODES:
            raise ConfigurationError(
                f"cache_mode must be one of {VALID_CACHE_MODES}, got {self.cache_mode!r}"
            )
        if self.cache_mode != "off" and not self.cache_dir:
            raise ConfigurationError(
                f"cache_mode={self.cache_mode!r} requires cache_dir"
            )
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ConfigurationError("cache_max_bytes must be >= 1 (or None for unbounded)")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigurationError("tenant must be a non-empty string")
        if self.priority not in VALID_PRIORITIES:
            raise ConfigurationError(
                f"priority must be one of {VALID_PRIORITIES}, got {self.priority!r}"
            )
        if self.size_scale <= 0:
            raise ConfigurationError("size_scale must be positive")
        if self.work_time_scale is not None and self.work_time_scale <= 0:
            raise ConfigurationError("work_time_scale must be positive")
        for name in ("assumed_compression_throughput_mbps", "assumed_decompression_throughput_mbps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        # Validate the error-bound mode eagerly.
        ErrorBoundMode.parse(self.error_bound_mode)

    def with_overrides(self, **overrides) -> "OcelotConfig":
        """Return a copy of this configuration with ``overrides`` applied.

        Unknown field names raise :class:`ConfigurationError` instead of
        silently creating attributes, and the copy is re-validated, so a
        per-job override that produces an inconsistent configuration
        fails at request time rather than deep inside a run.
        """
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown OcelotConfig override(s) {unknown}; valid fields: {sorted(valid)}"
            )
        return dataclasses.replace(self, **overrides)

    def resolved_error_bound(self) -> ErrorBound:
        """Return the configured error bound as an :class:`ErrorBound`."""
        return ErrorBound(value=self.error_bound, mode=ErrorBoundMode.parse(self.error_bound_mode))

    def total_compression_cores(self) -> int:
        """Cores available to the parallel compression job."""
        return self.compression_nodes * self.cores_per_node

    def total_decompression_cores(self) -> int:
        """Cores available to the parallel decompression job."""
        return self.decompression_nodes * self.cores_per_node

    def resolved_work_time_scale(self) -> float:
        """Scale applied to measured per-file (de)compression times.

        Defaults to ``size_scale``: when files are staged at ``size_scale``
        times their in-memory size, the per-file compute time is scaled by
        the same factor (compression cost is roughly linear in elements).
        """
        return float(self.work_time_scale if self.work_time_scale is not None else self.size_scale)

"""The sentinel: transfer raw data while compression nodes are queued.

When the batch scheduler cannot start the compression job immediately,
waiting idly can make the compressed transfer *slower* than a plain
transfer.  The sentinel monitors the queue and, during the waiting time,
transfers files raw (uncompressed), recording which files no longer need
compression; once nodes are granted it stops and hands the remaining
files to the parallel compression job (Fig. 10).  In the worst case —
nodes never arrive — everything is transferred raw, so compression can
only help, never hurt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..transfer.gridftp import GridFTPSettings
from ..transfer.network import WANLink

__all__ = ["SentinelDecision", "Sentinel"]


@dataclass
class SentinelDecision:
    """Outcome of the sentinel's planning for one waiting period."""

    wait_s: float
    raw_paths: List[str] = field(default_factory=list)
    compress_paths: List[str] = field(default_factory=list)
    raw_bytes: int = 0
    raw_transfer_s: float = 0.0

    @property
    def raw_count(self) -> int:
        """Number of files sent raw during the wait."""
        return len(self.raw_paths)


class Sentinel:
    """Plan which files to transfer raw during the node-waiting window."""

    def __init__(self, settings: GridFTPSettings | None = None) -> None:
        self.settings = settings or GridFTPSettings()

    def plan(
        self,
        files: Sequence[Tuple[str, int]],
        wait_s: float,
        link: WANLink,
        threshold_s: float = 5.0,
    ) -> SentinelDecision:
        """Split files into a raw-transfer prefix and a to-compress remainder.

        Files are considered in their on-disk order (the paper writes the
        finished filenames to a meta file in completion order); the raw
        prefix is the largest set whose estimated transfer time fits into
        the waiting window.  Short waits (below ``threshold_s``) are not
        worth starting a raw transfer for.
        """
        decision = SentinelDecision(wait_s=float(wait_s))
        names = [name for name, _ in files]
        if wait_s <= threshold_s or not files:
            decision.compress_paths = list(names)
            return decision
        # Incrementally add files while the estimated raw-transfer time of
        # the prefix still fits inside the waiting window.  For similar-size
        # files the engine's greedy schedule is well approximated by
        # aggregate-bandwidth streaming plus a per-channel share of the
        # per-file handling overhead.
        channels = max(1, min(self.settings.concurrency, len(files)))
        per_channel_bw = min(
            link.stream_bandwidth(self.settings.parallelism),
            link.bandwidth_bps / channels,
        )
        aggregate_bw = per_channel_bw * channels
        per_file_overhead = link.per_file_overhead_s / min(self.settings.pipelining, 8)
        per_file_overhead += link.rtt_s / max(self.settings.pipelining, 1)
        chosen = 0
        elapsed = 3.0 * link.rtt_s
        last_duration = 0.0
        for _, size in files:
            cost = size / aggregate_bw + per_file_overhead / channels
            if elapsed + cost > wait_s:
                break
            elapsed += cost
            last_duration = elapsed
            chosen += 1
        decision.raw_paths = names[:chosen]
        decision.compress_paths = names[chosen:]
        decision.raw_bytes = sum(size for _, size in files[:chosen])
        decision.raw_transfer_s = last_duration
        return decision

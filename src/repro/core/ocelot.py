"""The Ocelot client facade.

This is the object users interact with (through Python or the CLI).  It
bundles the three capabilities described in Section V of the paper:

1. selecting a best-qualified compression configuration with the quality
   predictor (:meth:`Ocelot.train_predictor`, :meth:`Ocelot.predict_quality`);
2. reducing transfer time with parallel (de)compression
   (:meth:`Ocelot.transfer_dataset`);
3. remote orchestration via the FaaS + transfer services, with analytics
   collected on the client (:meth:`Ocelot.reports`, :meth:`Ocelot.compare_modes`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..datasets.base import Field, ScientificDataset
from ..errors import OrchestrationError
from ..faas.service import FuncXService, build_faas_service
from ..prediction.quality_model import QualityPrediction, QualityPredictor
from ..prediction.training import DEFAULT_ERROR_BOUNDS, build_training_records
from ..transfer.testbed import Testbed, build_testbed
from .config import OcelotConfig
from .orchestrator import OcelotOrchestrator
from .parallel import ParallelCostModel
from .reporting import ModeComparison, TransferReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service import OcelotService

__all__ = ["Ocelot"]


class Ocelot:
    """High-level client for compression-accelerated wide-area transfers."""

    def __init__(
        self,
        config: Optional[OcelotConfig] = None,
        testbed: Optional[Testbed] = None,
        faas: Optional[FuncXService] = None,
        predictor: Optional[QualityPredictor] = None,
        cost_model: Optional[ParallelCostModel] = None,
    ) -> None:
        self.config = config or OcelotConfig()
        self.testbed = testbed or build_testbed()
        self.faas = faas or build_faas_service(clock=self.testbed.clock)
        self.predictor = predictor or QualityPredictor(
            sample_fraction=self.config.sample_fraction
        )
        self._cost_model = cost_model
        self._reports: List[TransferReport] = []
        self._service: Optional["OcelotService"] = None
        self._predict_fn_id = self.faas.register_function(
            _remote_quality_prediction, name="ocelot_quality_prediction"
        )

    # ------------------------------------------------------------------ #
    # Capability 1: quality prediction
    # ------------------------------------------------------------------ #
    def train_predictor(
        self,
        fields: Iterable[Field],
        error_bounds: Sequence[float] = DEFAULT_ERROR_BOUNDS,
        compressors: Optional[Sequence[str]] = None,
    ) -> QualityPredictor:
        """Train the quality predictor on measured compression outcomes."""
        records = build_training_records(
            fields,
            error_bounds=error_bounds,
            compressors=compressors or (self.config.compressor,),
            sample_fraction=self.config.sample_fraction,
        )
        self.predictor.fit(records)
        return self.predictor

    def predict_quality(
        self,
        data: np.ndarray,
        error_bounds: Optional[Sequence[float]] = None,
        compressors: Optional[Sequence[str]] = None,
        endpoint: str = "anvil",
    ) -> List[QualityPrediction]:
        """Predict compression quality for candidate configurations.

        The prediction runs "remotely" through the FaaS service (the data
        stay on the endpoint where they reside; only the small predictions
        come back), exactly as Ocelot's quality predictor does via FuncX.
        """
        if not self.predictor.is_fitted:
            raise OrchestrationError(
                "the quality predictor has not been trained; call train_predictor() first"
            )
        bounds = list(error_bounds or self.config.candidate_error_bounds)
        names = list(compressors or [self.config.compressor])
        task = self.faas.run(
            endpoint,
            self._predict_fn_id,
            args=(self.predictor, data, bounds, names),
            nodes=1,
        )
        return task.result

    def recommend_configuration(
        self,
        data: np.ndarray,
        error_bounds: Optional[Sequence[float]] = None,
        compressors: Optional[Sequence[str]] = None,
        min_psnr_db: Optional[float] = None,
    ) -> QualityPrediction:
        """Return the best-qualified configuration for ``data``."""
        if not self.predictor.is_fitted:
            raise OrchestrationError(
                "the quality predictor has not been trained; call train_predictor() first"
            )
        return self.predictor.recommend(
            data,
            error_bounds=list(error_bounds or self.config.candidate_error_bounds),
            compressors=list(compressors or [self.config.compressor]),
            min_psnr_db=self.config.min_psnr_db if min_psnr_db is None else min_psnr_db,
        )

    # ------------------------------------------------------------------ #
    # Capability 2 + 3: compression-accelerated, remotely orchestrated transfer
    # ------------------------------------------------------------------ #
    def _orchestrator_for(self, config: OcelotConfig) -> OcelotOrchestrator:
        return OcelotOrchestrator(
            config=config,
            testbed=self.testbed,
            faas=self.faas,
            predictor=self.predictor if self.predictor.is_fitted else None,
            cost_model=self._cost_model,
        )

    def _orchestrator(self) -> OcelotOrchestrator:
        return self._orchestrator_for(self.config)

    @property
    def service(self) -> "OcelotService":
        """The job-oriented service behind this client.

        ``transfer_dataset`` / ``compare_modes`` are submit-and-wait
        wrappers over this service; use it directly to run many
        concurrent jobs (``service.submit(TransferSpec(...))``) against
        the client's testbed, FaaS substrate and trained predictor.
        """
        if self._service is None:
            from ..service import OcelotService

            self._service = OcelotService(
                config=self.config,
                testbed=self.testbed,
                faas=self.faas,
                orchestrator_factory=self._orchestrator_for,
            )
        return self._service

    def transfer_dataset(
        self,
        dataset: ScientificDataset,
        source: str,
        destination: str,
        mode: Optional[str] = None,
    ) -> TransferReport:
        """Transfer a dataset, compressing according to the configuration.

        Thin wrapper: submits one :class:`~repro.service.TransferSpec`
        to the job service and waits for its report.
        """
        from ..service import TransferSpec

        handle = self.service.submit(
            TransferSpec(dataset=dataset, source=source, destination=destination, mode=mode)
        )
        report = handle.result()
        # Match the legacy wrapper's retention: keep only the report, not
        # the finished job record (sweeps would otherwise grow the
        # service without bound).
        self.service.discard(handle.job_id)
        self._reports.append(report)
        return report

    def compare_modes(
        self,
        dataset: ScientificDataset,
        source: str,
        destination: str,
        modes: Sequence[str] = ("direct", "compressed", "grouped"),
    ) -> ModeComparison:
        """Run the same transfer under several modes (Table VIII protocol).

        The testbed is reset between runs — simulation clock back to
        zero *and* per-endpoint staged files cleared — so each mode
        starts from a truly identical state.
        """
        comparison = ModeComparison(dataset=dataset.name, source=source, destination=destination)
        for mode in modes:
            self.testbed.reset_clock()
            report = self.transfer_dataset(dataset, source, destination, mode=mode)
            comparison.add(report)
        return comparison

    # ------------------------------------------------------------------ #
    # Analytics
    # ------------------------------------------------------------------ #
    def reports(self) -> List[TransferReport]:
        """All transfer reports collected by this client."""
        return list(self._reports)

    def clear_reports(self) -> None:
        """Discard collected reports."""
        self._reports.clear()


def _remote_quality_prediction(
    predictor: QualityPredictor,
    data: np.ndarray,
    error_bounds: Sequence[float],
    compressors: Sequence[str],
) -> List[QualityPrediction]:
    """FaaS-executed helper: run the predictor sweep next to the data."""
    return predictor.predict_sweep(data, error_bounds, compressors=compressors)

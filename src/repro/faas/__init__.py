"""Simulated federated Function-as-a-Service substrate (FuncX-style).

Ocelot uses FuncX to orchestrate compression and decompression on remote
endpoints without logging in to them.  This package models the pieces
that matter for transfer performance: function registration/dispatch,
per-endpoint container warm-up, and — most importantly — the batch
scheduler whose *node waiting time* motivates the paper's sentinel
optimisation.
"""

from __future__ import annotations

from .function import FunctionRegistry, FunctionSpec
from .container import ContainerPool
from .batch_scheduler import BatchScheduler, NodeAllocation, NodeWaitModel
from .endpoint import FaaSEndpoint, FaaSExecution
from .service import FuncXService, FaaSTask, build_faas_service

__all__ = [
    "build_faas_service",
    "FunctionRegistry",
    "FunctionSpec",
    "ContainerPool",
    "BatchScheduler",
    "NodeAllocation",
    "NodeWaitModel",
    "FaaSEndpoint",
    "FaaSExecution",
    "FuncXService",
    "FaaSTask",
]

"""Function registration for the simulated FaaS service."""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..errors import FunctionNotRegisteredError

__all__ = ["FunctionSpec", "FunctionRegistry"]


@dataclass
class FunctionSpec:
    """A registered function and its metadata."""

    function_id: str
    name: str
    callable: Callable
    description: str = ""
    container: str = "default"
    metadata: Dict[str, str] = field(default_factory=dict)


class FunctionRegistry:
    """Maps function ids to Python callables (the FuncX registration step)."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionSpec] = {}

    def register(
        self,
        func: Callable,
        name: Optional[str] = None,
        description: str = "",
        container: str = "default",
    ) -> str:
        """Register a callable and return its function id.

        The id is derived from the function's qualified name and source
        (when available) so re-registering the same function is idempotent.
        """
        func_name = name or getattr(func, "__name__", "anonymous")
        try:
            source = inspect.getsource(func)
        except (OSError, TypeError):
            source = repr(func)
        digest = hashlib.sha256(f"{func_name}|{source}".encode("utf-8")).hexdigest()[:16]
        function_id = f"fn-{digest}"
        if not description:
            doc_lines = (func.__doc__ or "").strip().splitlines()
            description = doc_lines[0] if doc_lines else ""
        self._functions[function_id] = FunctionSpec(
            function_id=function_id,
            name=func_name,
            callable=func,
            description=description,
            container=container,
        )
        return function_id

    def get(self, function_id: str) -> FunctionSpec:
        """Look up a registered function by id."""
        try:
            return self._functions[function_id]
        except KeyError as exc:
            raise FunctionNotRegisteredError(
                f"function {function_id!r} has not been registered"
            ) from exc

    def ids(self) -> Dict[str, str]:
        """Mapping of function id -> function name for all registrations."""
        return {fid: spec.name for fid, spec in self._functions.items()}

    def __contains__(self, function_id: str) -> bool:
        return function_id in self._functions

    def __len__(self) -> int:
        return len(self._functions)

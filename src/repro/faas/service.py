"""The federated FaaS service: registration plus remote dispatch.

``FuncXService`` is the hub Ocelot talks to: functions are registered
once, then invoked on any registered endpoint.  Each invocation returns
a :class:`FaaSTask` carrying the function result and the simulated
timing breakdown (queue wait, container start-up, execution).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import FaaSError
from ..utils.clock import SimulationClock
from .batch_scheduler import BatchScheduler, NodeWaitModel
from .endpoint import FaaSEndpoint, FaaSExecution
from .function import FunctionRegistry

__all__ = ["FaaSTask", "FuncXService"]


@dataclass
class FaaSTask:
    """One completed FaaS invocation."""

    task_id: str
    function_id: str
    endpoint: str
    execution: FaaSExecution
    submitted_at: float
    completed_at: float

    @property
    def result(self) -> Any:
        """The function's return value."""
        return self.execution.value

    @property
    def duration_s(self) -> float:
        """Total simulated duration including queue wait."""
        return self.execution.total_s


class FuncXService:
    """Federated FaaS hub: register functions, dispatch to endpoints."""

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.registry = FunctionRegistry()
        self.clock = clock or SimulationClock()
        self._endpoints: Dict[str, FaaSEndpoint] = {}
        self._tasks: List[FaaSTask] = []
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    def register_endpoint(self, endpoint: FaaSEndpoint) -> None:
        """Attach a FuncX endpoint to the service."""
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> FaaSEndpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError as exc:
            raise FaaSError(
                f"unknown FaaS endpoint {name!r}; registered: {sorted(self._endpoints)}"
            ) from exc

    def endpoints(self) -> List[str]:
        """Names of registered endpoints."""
        return sorted(self._endpoints)

    def register_function(self, func, name: Optional[str] = None, container: str = "default") -> str:
        """Register a Python callable; returns the function id."""
        return self.registry.register(func, name=name, container=container)

    # ------------------------------------------------------------------ #
    def run(
        self,
        endpoint_name: str,
        function_id: str,
        args: tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        nodes: int = 1,
        simulated_duration_s: Optional[float] = None,
        advance_clock: bool = True,
    ) -> FaaSTask:
        """Invoke a registered function on an endpoint.

        When ``advance_clock`` is True the shared simulation clock advances
        by the task's total duration (queue wait + start-up + execution);
        orchestration layers that overlap FaaS work with transfers manage
        the clock themselves and pass False.
        """
        spec = self.registry.get(function_id)
        endpoint = self.endpoint(endpoint_name)
        submitted = self.clock.now
        execution = endpoint.execute(
            spec.callable,
            args=args,
            kwargs=kwargs,
            nodes=nodes,
            container=spec.container,
            now=submitted,
            simulated_duration_s=simulated_duration_s,
        )
        if advance_clock:
            self.clock.advance(execution.total_s)
        task = FaaSTask(
            task_id=f"faas-{next(self._counter):06d}",
            function_id=function_id,
            endpoint=endpoint_name,
            execution=execution,
            submitted_at=submitted,
            completed_at=self.clock.now,
        )
        self._tasks.append(task)
        return task

    def tasks(self) -> List[FaaSTask]:
        """All tasks run so far."""
        return list(self._tasks)


def build_faas_service(
    clock: Optional[SimulationClock] = None,
    wait_models: Optional[Dict[str, NodeWaitModel]] = None,
    nodes: Optional[Dict[str, int]] = None,
    cores_per_node: Optional[Dict[str, int]] = None,
    seed: int = 0,
) -> FuncXService:
    """Build a FuncX service with endpoints matching the paper's testbed.

    Anvil schedules compression immediately (the paper reports negligible
    waiting there); Bebop and Cori use a bimodal waiting model (usually
    0-30 s, occasionally much longer).
    """
    service = FuncXService(clock=clock)
    default_wait = {
        "anvil": NodeWaitModel(kind="immediate"),
        "bebop": NodeWaitModel(kind="bimodal", scale_s=30.0, heavy_tail_p=0.1,
                               heavy_tail_scale_s=600.0),
        "cori": NodeWaitModel(kind="bimodal", scale_s=30.0, heavy_tail_p=0.1,
                              heavy_tail_scale_s=600.0),
    }
    default_nodes = {"anvil": 16, "bebop": 8, "cori": 8}
    default_cores = {"anvil": 128, "bebop": 36, "cori": 32}
    wait_models = {**default_wait, **(wait_models or {})}
    nodes = {**default_nodes, **(nodes or {})}
    cores_per_node = {**default_cores, **(cores_per_node or {})}
    for name in sorted(nodes):
        scheduler = BatchScheduler(
            total_nodes=nodes[name],
            wait_model=wait_models.get(name, NodeWaitModel()),
            seed=seed + hash(name) % 1000,
        )
        service.register_endpoint(
            FaaSEndpoint(name=name, scheduler=scheduler, cores_per_node=cores_per_node[name])
        )
    return service

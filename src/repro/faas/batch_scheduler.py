"""Batch-scheduler model with configurable node-waiting-time behaviour.

The paper observes that compression jobs submitted through a batch
scheduler may wait anywhere between seconds and hours for compute nodes
(Section VIII-D), motivating the sentinel optimisation.  The scheduler
here tracks node occupancy and samples additional queue wait from a
configurable distribution so experiments can sweep the waiting regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SchedulingError
from ..utils.rng import rng_from_seed

__all__ = ["NodeWaitModel", "NodeAllocation", "BatchScheduler"]


@dataclass(frozen=True)
class NodeWaitModel:
    """Distribution of queue waiting time.

    ``kind`` may be:

    * ``immediate`` — nodes are always free (Anvil in the paper);
    * ``constant`` — a fixed wait of ``scale_s`` seconds;
    * ``uniform`` — uniform in ``[0, scale_s]``;
    * ``exponential`` — exponential with mean ``scale_s``;
    * ``bimodal`` — mostly short waits with probability ``1 - heavy_tail_p``,
      and long waits around ``heavy_tail_scale_s`` otherwise (matching the
      paper's "0-30 s usually, sometimes minutes or hours" description of
      Bebop/Cori).
    """

    kind: str = "immediate"
    scale_s: float = 0.0
    heavy_tail_p: float = 0.1
    heavy_tail_scale_s: float = 600.0

    def sample(self, rng) -> float:
        """Draw one waiting time in seconds."""
        if self.kind == "immediate":
            return 0.0
        if self.kind == "constant":
            return float(self.scale_s)
        if self.kind == "uniform":
            return float(rng.uniform(0.0, self.scale_s))
        if self.kind == "exponential":
            return float(rng.exponential(self.scale_s))
        if self.kind == "bimodal":
            if rng.uniform() < self.heavy_tail_p:
                return float(rng.exponential(self.heavy_tail_scale_s))
            return float(rng.uniform(0.0, self.scale_s))
        raise SchedulingError(f"unknown node wait model kind {self.kind!r}")


@dataclass
class NodeAllocation:
    """A granted node allocation."""

    allocation_id: int
    nodes: int
    wait_s: float
    granted_at: float
    released: bool = False


class BatchScheduler:
    """Node pool with queue-wait sampling."""

    def __init__(
        self,
        total_nodes: int = 16,
        wait_model: Optional[NodeWaitModel] = None,
        seed: int = 0,
    ) -> None:
        if total_nodes < 1:
            raise SchedulingError("scheduler needs at least one node")
        self.total_nodes = int(total_nodes)
        self.wait_model = wait_model or NodeWaitModel()
        self._rng = rng_from_seed(seed)
        self._busy_nodes = 0
        self._allocations: List[NodeAllocation] = []
        self._next_id = 1

    # ------------------------------------------------------------------ #
    @property
    def busy_nodes(self) -> int:
        """Nodes currently allocated."""
        return self._busy_nodes

    @property
    def free_nodes(self) -> int:
        """Nodes currently free."""
        return self.total_nodes - self._busy_nodes

    def request(
        self, nodes: int, now: float = 0.0, include_backfill: bool = True
    ) -> NodeAllocation:
        """Request ``nodes`` nodes; returns an allocation with its queue wait.

        Requests larger than the partition raise; requests that cannot be
        satisfied from free nodes add a backfill delay on top of the
        sampled queue wait.

        ``include_backfill=False`` charges only the sampled queue wait:
        multi-job schedulers that place allocations on a shared timeline
        account for node occupancy themselves, and adding the backfill
        deficit on top would bill the same contention twice.
        """
        if nodes < 1:
            raise SchedulingError("must request at least one node")
        if nodes > self.total_nodes:
            raise SchedulingError(
                f"requested {nodes} nodes but the partition only has {self.total_nodes}"
            )
        wait = self.wait_model.sample(self._rng)
        if include_backfill and nodes > self.free_nodes:
            # Nodes are occupied by other users' jobs: wait for backfill.
            deficit = nodes - self.free_nodes
            wait += deficit * max(30.0, self.wait_model.scale_s or 30.0)
            self._busy_nodes = max(0, self.total_nodes - nodes)
        allocation = NodeAllocation(
            allocation_id=self._next_id,
            nodes=nodes,
            wait_s=float(wait),
            granted_at=now + float(wait),
        )
        self._next_id += 1
        self._busy_nodes += nodes
        self._busy_nodes = min(self._busy_nodes, self.total_nodes)
        self._allocations.append(allocation)
        return allocation

    def release(self, allocation: NodeAllocation) -> None:
        """Return an allocation's nodes to the pool."""
        if allocation.released:
            return
        allocation.released = True
        self._busy_nodes = max(0, self._busy_nodes - allocation.nodes)

    def allocations(self) -> List[NodeAllocation]:
        """All allocations granted so far."""
        return list(self._allocations)

"""A FuncX execution endpoint attached to an HPC site.

Executing a function really runs the Python callable in-process (so
compression work is genuinely performed), while the *simulated* time
charged to the workflow consists of the batch-scheduler queue wait, the
container start-up cost and either the measured wall time of the call or
a caller-provided simulated duration (used when the work models a much
larger machine than the one running the benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import FaaSError
from .batch_scheduler import BatchScheduler, NodeAllocation
from .container import ContainerPool

__all__ = ["FaaSExecution", "FaaSEndpoint"]


@dataclass
class FaaSExecution:
    """Outcome of one function execution on an endpoint."""

    value: Any
    queue_wait_s: float
    startup_s: float
    execution_s: float
    nodes: int
    endpoint: str
    allocation: Optional[NodeAllocation] = None

    @property
    def total_s(self) -> float:
        """Total simulated time from submission to completion."""
        return self.queue_wait_s + self.startup_s + self.execution_s


@dataclass
class FaaSEndpoint:
    """A user-deployed FuncX endpoint on one HPC system."""

    name: str
    scheduler: BatchScheduler
    cores_per_node: int = 128
    containers: ContainerPool = field(default_factory=ContainerPool)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise FaaSError(f"endpoint {self.name!r} needs at least one core per node")

    @property
    def total_cores(self) -> int:
        """Total cores across the endpoint's partition."""
        return self.cores_per_node * self.scheduler.total_nodes

    def execute(
        self,
        func: Callable,
        args: tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        nodes: int = 1,
        container: str = "default",
        now: float = 0.0,
        simulated_duration_s: Optional[float] = None,
        hold_allocation: bool = False,
    ) -> FaaSExecution:
        """Run ``func`` on this endpoint.

        ``simulated_duration_s`` overrides the charged execution time (the
        callable is still executed for its side effects/return value); when
        omitted the measured wall time of the call is charged.  With
        ``hold_allocation`` the caller is responsible for releasing the
        node allocation (used by multi-step compression jobs).
        """
        allocation = self.scheduler.request(nodes, now=now)
        startup = self.containers.startup_cost(container)
        start = time.perf_counter()
        value = func(*args, **(kwargs or {}))
        measured = time.perf_counter() - start
        execution = measured if simulated_duration_s is None else float(simulated_duration_s)
        if not hold_allocation:
            self.scheduler.release(allocation)
        return FaaSExecution(
            value=value,
            queue_wait_s=allocation.wait_s,
            startup_s=startup,
            execution_s=execution,
            nodes=nodes,
            endpoint=self.name,
            allocation=allocation if hold_allocation else None,
        )

    def release(self, execution: FaaSExecution) -> None:
        """Release a held allocation from a previous execution."""
        if execution.allocation is not None:
            self.scheduler.release(execution.allocation)

"""Container warm-up model.

FuncX packages functions into containers on each endpoint; the first
invocation pays a cold-start (image pull + instantiation), later calls
hit a warm container.  The pool keeps per-(endpoint, container) warmth
state and reports the start-up cost the executor should charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

__all__ = ["ContainerPool"]


@dataclass
class ContainerPool:
    """Tracks which containers are warm on an endpoint."""

    cold_start_s: float = 5.0
    warm_start_s: float = 0.05
    max_warm: int = 16
    _warm: Set[str] = field(default_factory=set)
    _usage: Dict[str, int] = field(default_factory=dict)

    def startup_cost(self, container: str) -> float:
        """Start-up cost of launching a function in ``container``.

        Calling this marks the container warm (it was just used), evicting
        the least-used container when the warm pool is full.
        """
        self._usage[container] = self._usage.get(container, 0) + 1
        if container in self._warm:
            return self.warm_start_s
        if len(self._warm) >= self.max_warm:
            coldest = min(self._warm, key=lambda c: self._usage.get(c, 0))
            self._warm.discard(coldest)
        self._warm.add(container)
        return self.cold_start_s

    def is_warm(self, container: str) -> bool:
        """Whether a container is currently warm."""
        return container in self._warm

    def invalidate(self, container: str) -> None:
        """Force a container cold (e.g. endpoint restart)."""
        self._warm.discard(container)

    def warm_containers(self) -> Tuple[str, ...]:
        """Currently warm containers (unordered)."""
        return tuple(self._warm)

"""Quality records: one measured (features, outcomes) sample per compression run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..features.vector import FeatureVector

__all__ = ["QualityRecord", "records_to_matrix"]


@dataclass
class QualityRecord:
    """One training/testing sample for the quality predictor.

    Holds the extracted feature vector plus the measured ground truth for
    the three predicted quantities (compression ratio, compression time,
    PSNR) and identifying metadata.
    """

    features: FeatureVector
    compression_ratio: float
    compression_time_s: float
    psnr_db: Optional[float]
    application: str = ""
    field_name: str = ""
    snapshot: int = 0
    error_bound_abs: float = 0.0
    error_bound_label: str = ""
    compressor: str = ""
    num_elements: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def key(self) -> Tuple[str, str, int, str, str]:
        """A stable identity for grouping / splitting."""
        return (
            self.application,
            self.field_name,
            self.snapshot,
            self.error_bound_label,
            self.compressor,
        )


def records_to_matrix(
    records: List[QualityRecord], target: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (X, y) for one of the targets: ``ratio``, ``time`` or ``psnr``.

    Records whose target is missing/non-finite are dropped (e.g. infinite
    PSNR for exactly reconstructed constant fields).
    """
    if target not in ("ratio", "time", "psnr"):
        raise ValueError(f"unknown target {target!r}; expected ratio, time or psnr")
    feats: List[FeatureVector] = []
    targets: List[float] = []
    for record in records:
        if target == "ratio":
            value = record.compression_ratio
        elif target == "time":
            value = record.compression_time_s
        else:
            value = record.psnr_db if record.psnr_db is not None else float("nan")
        if value is None or not np.isfinite(value):
            continue
        feats.append(record.features)
        targets.append(float(value))
    X = FeatureVector.matrix(feats)
    y = np.asarray(targets, dtype=np.float64)
    return X, y

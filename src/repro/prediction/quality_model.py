"""The compression-quality predictor (ratio, time and PSNR).

Three decision-tree regressors (one per target) are trained on the
11-feature vectors; at run time the predictor extracts features from a
~1 % subsample of a field and returns the predicted compression ratio,
compression time and PSNR for any candidate (error bound, compressor)
configuration — which is how Ocelot selects the "best-qualified"
compression setting without compressing the data first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..compression import ErrorBound
from ..errors import ModelNotFittedError
from ..features.extractor import FeatureExtractor
from ..features.vector import FeatureVector
from ..ml.decision_tree import DecisionTreeRegressor
from ..ml.model_io import model_from_dict, model_to_dict
from ..ml.random_forest import RandomForestRegressor
from .records import QualityRecord, records_to_matrix

__all__ = ["QualityPrediction", "QualityPredictor"]


@dataclass(frozen=True)
class QualityPrediction:
    """Predicted quality for one (data, error bound, compressor) configuration."""

    compression_ratio: float
    compression_time_s: float
    psnr_db: float
    error_bound_abs: float
    compressor: str

    def as_dict(self) -> Dict[str, float]:
        """Return the prediction as a plain dictionary."""
        return {
            "compression_ratio": self.compression_ratio,
            "compression_time_s": self.compression_time_s,
            "psnr_db": self.psnr_db,
            "error_bound_abs": self.error_bound_abs,
        }


def _new_model(kind: str, seed: int = 0):
    if kind == "decision_tree":
        return DecisionTreeRegressor(max_depth=14, min_samples_leaf=1, min_samples_split=2)
    if kind == "random_forest":
        return RandomForestRegressor(n_estimators=20, max_depth=14, random_state=seed)
    raise ValueError(f"unknown model kind {kind!r}")


class QualityPredictor:
    """Predict compression ratio, time and PSNR from extracted features."""

    TARGETS = ("ratio", "time", "psnr")

    def __init__(
        self,
        model_kind: str = "decision_tree",
        sample_fraction: float = 0.01,
        extractor: Optional[FeatureExtractor] = None,
    ) -> None:
        self.model_kind = model_kind
        self.extractor = extractor or FeatureExtractor(sample_fraction=sample_fraction)
        self._models: Dict[str, object] = {}
        self._training_summary: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether all three target models have been trained."""
        return set(self._models) == set(self.TARGETS)

    def fit(self, records: List[QualityRecord]) -> "QualityPredictor":
        """Train the three target models from measured quality records."""
        if not records:
            raise ModelNotFittedError("cannot fit the quality predictor on zero records")
        for target in self.TARGETS:
            X, y = records_to_matrix(records, target)
            if y.size == 0:
                # No usable samples for this target (e.g. PSNR all infinite);
                # fall back to a constant predictor via a 1-sample tree.
                X, y = records_to_matrix(records, "ratio")
                y = np.zeros_like(y)
            model = _new_model(self.model_kind)
            model.fit(X, y)
            self._models[target] = model
            self._training_summary[target] = int(y.size)
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict_from_features(
        self, features: FeatureVector, error_bound_abs: float, compressor: str
    ) -> QualityPrediction:
        """Predict quality from an already-extracted feature vector."""
        if not self.is_fitted:
            raise ModelNotFittedError("quality predictor has not been fitted")
        row = features.to_array().reshape(1, -1)
        ratio = float(self._models["ratio"].predict(row)[0])
        time_s = float(self._models["time"].predict(row)[0])
        psnr = float(self._models["psnr"].predict(row)[0])
        return QualityPrediction(
            compression_ratio=max(ratio, 1.0),
            compression_time_s=max(time_s, 0.0),
            psnr_db=psnr,
            error_bound_abs=error_bound_abs,
            compressor=compressor,
        )

    def predict(
        self,
        data: np.ndarray,
        error_bound: Union[float, ErrorBound],
        compressor: str = "sz3",
    ) -> QualityPrediction:
        """Extract features from ``data`` and predict quality.

        ``error_bound`` may be a float (interpreted as a value-range-relative
        bound, the paper's convention) or an :class:`ErrorBound`.
        """
        bound = (
            error_bound
            if isinstance(error_bound, ErrorBound)
            else ErrorBound.relative(float(error_bound))
        )
        eb_abs = bound.absolute_for(data)
        extraction = self.extractor.extract(data, eb_abs, compressor=compressor)
        return self.predict_from_features(extraction.features, eb_abs, compressor)

    def predict_sweep(
        self,
        data: np.ndarray,
        error_bounds: Sequence[float],
        compressors: Sequence[str] = ("sz3",),
    ) -> List[QualityPrediction]:
        """Predict quality for a grid of candidate configurations."""
        predictions = []
        for compressor in compressors:
            for rel in error_bounds:
                predictions.append(self.predict(data, rel, compressor=compressor))
        return predictions

    def recommend(
        self,
        data: np.ndarray,
        error_bounds: Sequence[float],
        compressors: Sequence[str] = ("sz3",),
        min_psnr_db: Optional[float] = 60.0,
        min_ratio: Optional[float] = None,
    ) -> QualityPrediction:
        """Select the best-qualified configuration.

        Among candidates satisfying the PSNR/ratio requirements, the one
        with the highest predicted compression ratio wins; if no candidate
        satisfies the constraints, the one with the highest predicted PSNR
        is returned (the most conservative choice).
        """
        candidates = self.predict_sweep(data, error_bounds, compressors)
        acceptable = [
            c
            for c in candidates
            if (min_psnr_db is None or c.psnr_db >= min_psnr_db)
            and (min_ratio is None or c.compression_ratio >= min_ratio)
        ]
        if acceptable:
            return max(acceptable, key=lambda c: c.compression_ratio)
        return max(candidates, key=lambda c: c.psnr_db)

    def feature_importances(self) -> Dict[str, np.ndarray]:
        """Per-target feature importances of the fitted models."""
        if not self.is_fitted:
            raise ModelNotFittedError("quality predictor has not been fitted")
        return {t: self._models[t].feature_importances() for t in self.TARGETS}

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the fitted predictor to a JSON file."""
        if not self.is_fitted:
            raise ModelNotFittedError("cannot save an unfitted quality predictor")
        payload = {
            "model_kind": self.model_kind,
            "training_summary": self._training_summary,
            "models": {t: model_to_dict(self._models[t]) for t in self.TARGETS},
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QualityPredictor":
        """Load a predictor previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        predictor = cls(model_kind=payload["model_kind"])
        predictor._models = {
            target: model_from_dict(model_payload)
            for target, model_payload in payload["models"].items()
        }
        predictor._training_summary = payload.get("training_summary", {})
        return predictor

"""Training-set construction for the quality predictor.

The paper sweeps 11 error bounds from 1e-6 to 1e-1 over every file of
every application, records the measured compression ratio / time / PSNR,
and trains on a fraction (30-50 %) of the files.  The builder here does
exactly that against the synthetic datasets (or any list of fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..compression import ErrorBound, create_compressor
from ..datasets.base import Field
from ..features.extractor import FeatureExtractor
from ..utils.rng import rng_from_seed
from .records import QualityRecord

__all__ = ["TrainingSetBuilder", "build_training_records", "train_test_split_records", "DEFAULT_ERROR_BOUNDS"]

#: The paper's sweep: 11 value-range-relative bounds from 1e-6 to 1e-1.
DEFAULT_ERROR_BOUNDS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
)


@dataclass
class TrainingSetBuilder:
    """Measure compression outcomes and collect quality records."""

    error_bounds: Sequence[float] = DEFAULT_ERROR_BOUNDS
    compressors: Sequence[str] = ("sz3",)
    sample_fraction: float = 0.01
    collect_psnr: bool = True
    extractor: Optional[FeatureExtractor] = None
    _records: List[QualityRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.extractor is None:
            self.extractor = FeatureExtractor(sample_fraction=self.sample_fraction)

    @property
    def records(self) -> List[QualityRecord]:
        """All records collected so far."""
        return list(self._records)

    def add_field(self, data_field: Field) -> List[QualityRecord]:
        """Run the sweep for one field, returning the new records."""
        new_records: List[QualityRecord] = []
        for compressor_name in self.compressors:
            compressor = create_compressor(compressor_name)
            for rel_bound in self.error_bounds:
                bound = ErrorBound.relative(rel_bound)
                eb_abs = bound.absolute_for(data_field.data)
                extraction = self.extractor.extract(
                    data_field.data, eb_abs, compressor=compressor_name
                )
                result = compressor.compress(
                    data_field.data, bound, collect_quality=self.collect_psnr
                )
                record = QualityRecord(
                    features=extraction.features,
                    compression_ratio=result.compression_ratio,
                    compression_time_s=result.stats.compression_time_s,
                    psnr_db=result.stats.psnr_db,
                    application=data_field.application,
                    field_name=data_field.name,
                    snapshot=data_field.snapshot,
                    error_bound_abs=eb_abs,
                    error_bound_label=f"{rel_bound:g}",
                    compressor=compressor_name,
                    num_elements=int(np.asarray(data_field.data).size),
                    extra={
                        "decompression_time_s": result.stats.decompression_time_s,
                        "extraction_time_s": extraction.extraction_time_s,
                        "max_abs_error": result.stats.max_abs_error or 0.0,
                    },
                )
                self._records.append(record)
                new_records.append(record)
        return new_records

    def add_fields(self, fields: Iterable[Field]) -> List[QualityRecord]:
        """Run the sweep for many fields."""
        out: List[QualityRecord] = []
        for data_field in fields:
            out.extend(self.add_field(data_field))
        return out


def build_training_records(
    fields: Iterable[Field],
    error_bounds: Sequence[float] = DEFAULT_ERROR_BOUNDS,
    compressors: Sequence[str] = ("sz3",),
    sample_fraction: float = 0.01,
    collect_psnr: bool = True,
) -> List[QualityRecord]:
    """Convenience wrapper: sweep all fields and return the records."""
    builder = TrainingSetBuilder(
        error_bounds=error_bounds,
        compressors=compressors,
        sample_fraction=sample_fraction,
        collect_psnr=collect_psnr,
    )
    builder.add_fields(fields)
    return builder.records


def train_test_split_records(
    records: List[QualityRecord],
    train_fraction: float = 0.3,
    seed: int = 0,
    by_file: bool = True,
) -> Tuple[List[QualityRecord], List[QualityRecord]]:
    """Split records into train/test sets.

    When ``by_file`` is True (the paper's protocol), whole files go to one
    side of the split: every error-bound sample of a given file lands in
    the same partition, so the test files are genuinely unseen.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train fraction must be in (0, 1), got {train_fraction}")
    rng = rng_from_seed(seed)
    if by_file:
        file_keys = sorted({(r.application, r.field_name, r.snapshot) for r in records})
        shuffled = list(file_keys)
        rng.shuffle(shuffled)
        n_train = max(1, int(round(len(shuffled) * train_fraction)))
        train_keys = set(shuffled[:n_train])
        train = [r for r in records if (r.application, r.field_name, r.snapshot) in train_keys]
        test = [r for r in records if (r.application, r.field_name, r.snapshot) not in train_keys]
    else:
        indices = np.arange(len(records))
        rng.shuffle(indices)
        n_train = max(1, int(round(len(records) * train_fraction)))
        train_idx = set(indices[:n_train].tolist())
        train = [r for i, r in enumerate(records) if i in train_idx]
        test = [r for i, r in enumerate(records) if i not in train_idx]
    if not test:
        test = train[-1:]
    return train, test

"""Compression-quality prediction: the paper's core ML contribution."""

from __future__ import annotations

from .records import QualityRecord, records_to_matrix
from .training import TrainingSetBuilder, build_training_records, train_test_split_records
from .quality_model import QualityPredictor, QualityPrediction
from .baseline import C1BaselineEstimator, ratio_quality_estimate
from .block_policy import (
    BlockPolicy,
    BlockPolicySample,
    build_block_policy_samples,
    train_block_policy,
)

__all__ = [
    "QualityRecord",
    "records_to_matrix",
    "TrainingSetBuilder",
    "build_training_records",
    "train_test_split_records",
    "QualityPredictor",
    "QualityPrediction",
    "C1BaselineEstimator",
    "ratio_quality_estimate",
    "BlockPolicy",
    "BlockPolicySample",
    "build_block_policy_samples",
    "train_block_policy",
]

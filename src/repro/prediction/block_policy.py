"""Learned per-block predictor selection.

Brute-force adaptive mode encodes every block with *every* candidate
predictor and keeps the smallest output — robust, but the losing
encodings are pure overhead.  :class:`BlockPolicy` learns that choice
instead: one regressor per candidate predictor maps a block's feature
vector (the same 11 features the quality predictor uses, extracted by
:meth:`repro.features.FeatureExtractor.extract_blocks` at block
granularity) to the log of the encoded size, and the policy picks the
candidate with the smallest predicted size.  With a trained policy the
pipeline encodes each block exactly once.

Training labels come from actually encoding blocks with each candidate
(:func:`build_block_policy_samples`), so the policy distils the
brute-force search it replaces.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compression import ErrorBound, create_compressor
from ..compression.blocking import BlockPlan, BlockShapeLike
from ..compression.predictors import create_predictor
from ..errors import ModelNotFittedError
from ..features.extractor import FeatureExtractor
from ..features.vector import FeatureVector
from ..ml.decision_tree import DecisionTreeRegressor
from ..ml.model_io import model_from_dict, model_to_dict

__all__ = ["BlockPolicySample", "BlockPolicy", "build_block_policy_samples", "train_block_policy"]

#: Candidate predictors the policy arbitrates between by default — the
#: same pair brute-force adaptive selection tries per block.
DEFAULT_CANDIDATES: Tuple[str, ...] = ("lorenzo", "interpolation")

#: Entropy codecs the policy can arbitrate between per block.  These are
#: the coded values of ``PipelineConfig.entropy_stage`` ("none" is not a
#: candidate: skipping entropy coding is a pipeline-level choice, not a
#: per-block one).
ENTROPY_CANDIDATES: Tuple[str, ...] = ("huffman", "rans")


@dataclass
class BlockPolicySample:
    """One training sample: a block's features and each candidate's size.

    ``sizes`` maps candidate *predictors* to the block's true encoded
    size.  ``entropy_sizes`` (optional) maps candidate *entropy codecs*
    to the size of the same block encoded with its best predictor but
    the given entropy stage — the label for the per-block codec choice.
    """

    features: FeatureVector
    sizes: Dict[str, int] = field(default_factory=dict)
    entropy_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def best_predictor(self) -> str:
        """The candidate that actually encoded this block smallest."""
        return min(self.sizes, key=self.sizes.get)

    @property
    def best_entropy(self) -> Optional[str]:
        """The entropy codec that encoded this block smallest (if labelled)."""
        if not self.entropy_sizes:
            return None
        return min(self.entropy_sizes, key=self.entropy_sizes.get)


class BlockPolicy:
    """Choose a block's predictor from its features, without encoding it.

    One :class:`DecisionTreeRegressor` per candidate predicts
    ``log1p(encoded size)``; :meth:`choose` returns the candidate with
    the smallest prediction.  Regressing sizes (rather than classifying
    the winner) keeps the decision calibrated when candidates are close
    and reuses the repo's existing tree models.
    """

    def __init__(
        self,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        extractor: Optional[FeatureExtractor] = None,
        max_depth: int = 12,
    ) -> None:
        self.candidates: Tuple[str, ...] = tuple(candidates)
        if len(self.candidates) < 2:
            raise ValueError("a block policy needs at least two candidate predictors")
        # Blocks are small, so inspect them in full by default.
        self.extractor = extractor or FeatureExtractor(sample_fraction=1.0)
        self.max_depth = int(max_depth)
        self._models: Dict[str, DecisionTreeRegressor] = {}
        self._entropy_models: Dict[str, DecisionTreeRegressor] = {}
        self.training_samples: int = 0

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether every candidate has a trained size model."""
        return bool(self._models) and set(self._models) == set(self.candidates)

    @property
    def chooses_entropy(self) -> bool:
        """Whether this policy also carries per-block entropy codec models.

        Policies trained (or saved) before the rANS stage existed return
        ``False`` here, and the pipeline falls back to its size-estimate
        heuristic for the codec choice.
        """
        return len(self._entropy_models) >= 2

    def fit(self, samples: Iterable[BlockPolicySample]) -> "BlockPolicy":
        """Train the per-candidate size models from labelled samples.

        Samples that also carry ``entropy_sizes`` train the per-codec
        entropy models as a side effect; the entropy models are only kept
        when every labelled codec has the same sample rows (so the size
        predictions stay comparable).
        """
        rows: List[np.ndarray] = []
        targets: Dict[str, List[float]] = {name: [] for name in self.candidates}
        entropy_rows: List[np.ndarray] = []
        entropy_targets: Dict[str, List[float]] = {}
        for sample in samples:
            missing = [name for name in self.candidates if name not in sample.sizes]
            if missing:
                raise ValueError(f"sample is missing candidate sizes for {missing}")
            row = sample.features.to_array()
            rows.append(row)
            for name in self.candidates:
                targets[name].append(float(np.log1p(sample.sizes[name])))
            if sample.entropy_sizes:
                if not entropy_targets:
                    entropy_targets = {codec: [] for codec in sorted(sample.entropy_sizes)}
                if set(sample.entropy_sizes) == set(entropy_targets):
                    entropy_rows.append(row)
                    for codec in entropy_targets:
                        entropy_targets[codec].append(
                            float(np.log1p(sample.entropy_sizes[codec]))
                        )
        if not rows:
            raise ModelNotFittedError("cannot fit a block policy on zero samples")
        X = np.vstack(rows)
        for name in self.candidates:
            model = DecisionTreeRegressor(max_depth=self.max_depth, min_samples_leaf=1)
            model.fit(X, np.asarray(targets[name]))
            self._models[name] = model
        self._entropy_models = {}
        if entropy_rows and len(entropy_targets) >= 2:
            Xe = np.vstack(entropy_rows)
            for codec in entropy_targets:
                model = DecisionTreeRegressor(
                    max_depth=self.max_depth, min_samples_leaf=1
                )
                model.fit(Xe, np.asarray(entropy_targets[codec]))
                self._entropy_models[codec] = model
        self.training_samples = len(rows)
        return self

    # ------------------------------------------------------------------ #
    def predicted_sizes(self, features: FeatureVector) -> Dict[str, float]:
        """Predicted encoded size (bytes) per candidate for one block."""
        if not self.is_fitted:
            raise ModelNotFittedError("block policy has not been fitted")
        row = features.to_array().reshape(1, -1)
        return {
            name: float(np.expm1(self._models[name].predict(row)[0]))
            for name in self.candidates
        }

    def choose(self, features: FeatureVector) -> str:
        """The candidate predicted to encode this block smallest."""
        sizes = self.predicted_sizes(features)
        return min(sizes, key=sizes.get)

    def choose_for_block(
        self, block: np.ndarray, error_bound_abs: float, compressor: str = "sz3"
    ) -> str:
        """Extract the block's features and pick its predictor.

        This is the hook the compression pipeline calls per block when a
        policy is configured; ``compressor`` feeds the config-based
        feature exactly as quality prediction does.
        """
        features = self.extractor.extract_features(
            np.asarray(block), error_bound_abs, compressor=compressor
        )
        return self.choose(features)

    # ------------------------------------------------------------------ #
    def predicted_entropy_sizes(self, features: FeatureVector) -> Dict[str, float]:
        """Predicted encoded size (bytes) per entropy codec for one block."""
        if not self.chooses_entropy:
            raise ModelNotFittedError("block policy has no entropy codec models")
        row = features.to_array().reshape(1, -1)
        return {
            codec: float(np.expm1(model.predict(row)[0]))
            for codec, model in self._entropy_models.items()
        }

    def choose_entropy(self, features: FeatureVector) -> str:
        """The entropy codec predicted to encode this block smallest."""
        sizes = self.predicted_entropy_sizes(features)
        return min(sizes, key=sizes.get)

    def choose_entropy_for_block(
        self, block: np.ndarray, error_bound_abs: float, compressor: str = "sz3"
    ) -> str:
        """Extract the block's features and pick its entropy codec.

        The pipeline calls this per block (when ``chooses_entropy`` is
        true) to tag each block section with the codec predicted to
        encode it smallest.
        """
        features = self.extractor.extract_features(
            np.asarray(block), error_bound_abs, compressor=compressor
        )
        return self.choose_entropy(features)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the fitted policy to a JSON file."""
        if not self.is_fitted:
            raise ModelNotFittedError("cannot save an unfitted block policy")
        payload = {
            "candidates": list(self.candidates),
            "max_depth": self.max_depth,
            "training_samples": self.training_samples,
            "models": {name: model_to_dict(self._models[name]) for name in self.candidates},
        }
        if self._entropy_models:
            payload["entropy_models"] = {
                codec: model_to_dict(model)
                for codec, model in self._entropy_models.items()
            }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BlockPolicy":
        """Load a policy previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        policy = cls(
            candidates=tuple(payload["candidates"]),
            max_depth=int(payload.get("max_depth", 12)),
        )
        policy._models = {
            name: model_from_dict(model_payload)
            for name, model_payload in payload["models"].items()
        }
        # Policies saved before the entropy stage landed have no codec
        # models; loading them leaves ``chooses_entropy`` False.
        policy._entropy_models = {
            codec: model_from_dict(model_payload)
            for codec, model_payload in payload.get("entropy_models", {}).items()
        }
        policy.training_samples = int(payload.get("training_samples", 0))
        return policy


ErrorBoundLike = Union[float, ErrorBound]


def _resolve_bound(error_bound: ErrorBoundLike, arr: np.ndarray) -> float:
    """Absolute bound for one array (relative bounds resolve per array)."""
    if isinstance(error_bound, ErrorBound):
        return error_bound.absolute_for(arr)
    return float(error_bound)


def build_block_policy_samples(
    arrays: Iterable[np.ndarray],
    error_bound: ErrorBoundLike,
    compressor: str = "sz3",
    block_shape: BlockShapeLike = 32,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    extractor: Optional[FeatureExtractor] = None,
    entropy_candidates: Sequence[str] = ENTROPY_CANDIDATES,
) -> List[BlockPolicySample]:
    """Label training samples by really encoding blocks with each candidate.

    For every block of every array, the block's feature vector is
    extracted (via :meth:`FeatureExtractor.extract_blocks`, the same
    partition the pipelines use) and each candidate predictor encodes the
    block through the named pipeline's serialisation + lossless stages to
    get its true size.  ``error_bound`` may be a float (absolute bound
    shared by every array) or an :class:`ErrorBound`, which is resolved
    per array — matching how the orchestrator resolves the bound per file
    at inference time.

    When ``entropy_candidates`` names at least two codecs, each block is
    additionally re-encoded with its best predictor under every candidate
    entropy stage, labelling the per-block codec choice.  Pass an empty
    sequence to skip those extra encodes and train a predictor-only
    policy.
    """
    pipeline = create_compressor(compressor)
    if not hasattr(pipeline, "measure_block_encoding"):
        raise ValueError(f"compressor {compressor!r} is not a prediction pipeline")
    extractor = extractor or FeatureExtractor(sample_fraction=1.0)
    predictors = {name: create_predictor(name, {}) for name in candidates}
    samples: List[BlockPolicySample] = []
    for array in arrays:
        arr = np.asarray(array)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        eb_abs = _resolve_bound(error_bound, arr)
        plan = BlockPlan.partition(arr.shape, block_shape)
        for block_features in extractor.extract_blocks(
            arr, eb_abs, compressor=compressor, block_shape=block_shape
        ):
            block = plan.extract(arr, block_features.spec)
            if not np.isfinite(block).all():
                continue
            sizes = {
                name: pipeline.measure_block_encoding(block, eb_abs, predictor)
                for name, predictor in predictors.items()
            }
            entropy_sizes: Dict[str, int] = {}
            if len(entropy_candidates) >= 2:
                best = min(sizes, key=sizes.get)
                entropy_sizes = {
                    codec: pipeline.measure_block_encoding(
                        block, eb_abs, predictors[best], entropy_stage=codec
                    )
                    for codec in entropy_candidates
                }
            samples.append(
                BlockPolicySample(
                    features=block_features.features,
                    sizes=sizes,
                    entropy_sizes=entropy_sizes,
                )
            )
    return samples


def train_block_policy(
    arrays: Iterable[np.ndarray],
    error_bound: ErrorBoundLike,
    compressor: str = "sz3",
    block_shape: BlockShapeLike = 32,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
) -> Tuple[BlockPolicy, Dict[str, float]]:
    """Train a block policy on ``arrays`` and report its training accuracy.

    Returns the fitted policy plus a summary: sample count, training
    time, and the fraction of training blocks where the policy picks the
    true smallest candidate (``agreement``).
    """
    start = time.perf_counter()
    samples = build_block_policy_samples(
        arrays,
        error_bound,
        compressor=compressor,
        block_shape=block_shape,
        candidates=candidates,
    )
    policy = BlockPolicy(candidates=candidates).fit(samples)
    agree = sum(
        1 for sample in samples if policy.choose(sample.features) == sample.best_predictor
    )
    summary = {
        "samples": float(len(samples)),
        "agreement": agree / len(samples) if samples else 0.0,
        "training_time_s": time.perf_counter() - start,
    }
    if policy.chooses_entropy:
        labelled = [sample for sample in samples if sample.entropy_sizes]
        entropy_agree = sum(
            1
            for sample in labelled
            if policy.choose_entropy(sample.features) == sample.best_entropy
        )
        summary["entropy_agreement"] = (
            entropy_agree / len(labelled) if labelled else 0.0
        )
    return policy, summary

"""The prior-work ratio estimator used as the paper's comparison baseline.

Jin et al. estimate the compression ratio with the closed form
``CR_hat = 1 / (C1 * (1 - p0) * P0 + (1 - P0))`` where ``C1`` is an
application-specific tuning constant.  The paper shows (Fig. 5 vs Fig. 6)
that this works well for Nyx but fails for Miranda, motivating feeding
p0/P0/Rrle into a learned model instead.  This module implements the
baseline, including a least-squares fit of ``C1``, so the comparison can
be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ModelNotFittedError
from .records import QualityRecord

__all__ = ["ratio_quality_estimate", "C1BaselineEstimator"]


def ratio_quality_estimate(p0: float, P0: float, c1: float = 1.0) -> float:
    """The closed-form ratio estimate ``1 / (C1 (1-p0) P0 + (1-P0))``."""
    denominator = c1 * (1.0 - p0) * P0 + (1.0 - P0)
    if denominator <= 0:
        return float(1e6)
    return float(1.0 / denominator)


@dataclass
class C1BaselineEstimator:
    """Ratio-only estimator with a tunable per-application constant C1."""

    c1: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        """Whether C1 has been set or fitted."""
        return self.c1 is not None

    def fit(self, records: List[QualityRecord]) -> "C1BaselineEstimator":
        """Least-squares fit of C1 on measured records.

        Solves ``1/CR = C1 * (1-p0) * P0 + (1-P0)`` for C1 in the
        least-squares sense over all records.
        """
        if not records:
            raise ModelNotFittedError("cannot fit the C1 baseline on zero records")
        a = []  # (1-p0) * P0 terms
        b = []  # 1/CR - (1-P0) targets
        for record in records:
            p0 = record.features["p0"]
            P0 = record.features["P0"]
            if record.compression_ratio <= 0:
                continue
            a.append((1.0 - p0) * P0)
            b.append(1.0 / record.compression_ratio - (1.0 - P0))
        a_arr = np.asarray(a, dtype=np.float64)
        b_arr = np.asarray(b, dtype=np.float64)
        denom = float(np.dot(a_arr, a_arr))
        if denom == 0.0:
            self.c1 = 1.0
        else:
            self.c1 = float(np.dot(a_arr, b_arr) / denom)
        return self

    def predict_record(self, record: QualityRecord) -> float:
        """Predict the compression ratio for one record's features."""
        if not self.is_fitted:
            raise ModelNotFittedError("C1 baseline has not been fitted")
        return ratio_quality_estimate(
            record.features["p0"], record.features["P0"], c1=float(self.c1)
        )

    def predict(self, records: List[QualityRecord]) -> np.ndarray:
        """Predict the compression ratio for a list of records."""
        return np.asarray([self.predict_record(r) for r in records], dtype=np.float64)

"""Minimal ML substrate: CART regression trees and random forests.

scikit-learn is not available in the offline environment, so the
decision-tree regressor the paper uses for quality prediction is
implemented here directly on NumPy, along with a bagged ensemble and the
regression metrics used in the evaluation.
"""

from __future__ import annotations

from .decision_tree import DecisionTreeRegressor
from .random_forest import RandomForestRegressor
from .metrics import (
    mean_absolute_error,
    root_mean_squared_error,
    r2_score,
    prediction_error_interval,
)
from .model_io import model_to_dict, model_from_dict, save_model, load_model

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "prediction_error_interval",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]

"""Bagged ensemble of CART trees (random forest regressor)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError, ModelNotFittedError
from .decision_tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Average of bootstrap-trained decision trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: float = 0.7,
        random_state: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._n_features: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether the forest has been fitted."""
        return bool(self._trees)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble with bootstrap resampling."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.size:
            raise ConfigurationError("X must be 2-D with one row per target")
        self._n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        n = X.shape[0]
        for i in range(self.n_estimators):
            indices = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets by averaging the per-tree predictions."""
        if not self.is_fitted:
            raise ModelNotFittedError("random forest has not been fitted")
        preds = np.vstack([tree.predict(X) for tree in self._trees])
        return preds.mean(axis=0)

    def feature_importances(self) -> np.ndarray:
        """Mean of per-tree split-count importances."""
        if not self.is_fitted:
            raise ModelNotFittedError("random forest has not been fitted")
        return np.mean([tree.feature_importances() for tree in self._trees], axis=0)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the fitted forest to a JSON-friendly dictionary."""
        return {
            "kind": "random_forest",
            "params": {
                "n_estimators": self.n_estimators,
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
            },
            "n_features": self._n_features,
            "trees": [tree.to_dict() for tree in self._trees],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RandomForestRegressor":
        """Rebuild a forest serialised with :meth:`to_dict`."""
        forest = cls(**payload["params"])
        forest._n_features = payload["n_features"]
        forest._trees = [DecisionTreeRegressor.from_dict(t) for t in payload["trees"]]
        return forest

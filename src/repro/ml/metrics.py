"""Regression metrics used in the paper's evaluation.

Besides the usual RMSE/MAE, :func:`prediction_error_interval` computes
the central confidence interval of the prediction error distribution —
the "80 % confidence interval" green boxes of Fig. 12.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "prediction_error_interval",
    "relative_error",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(y_true, dtype=np.float64).ravel()
    b = np.asarray(y_pred, dtype=np.float64).ravel()
    if a.size != b.size:
        raise ValueError(f"y_true has {a.size} values but y_pred has {b.size}")
    if a.size == 0:
        raise ValueError("metrics require at least one sample")
    return a, b


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    a, b = _validate(y_true, y_pred)
    return float(np.mean(np.abs(a - b)))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    a, b = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 when perfect, can be negative)."""
    a, b = _validate(y_true, y_pred)
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - a.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-sample relative error ``|pred - true| / max(|true|, eps)``."""
    a, b = _validate(y_true, y_pred)
    denom = np.maximum(np.abs(a), 1e-12)
    return np.abs(b - a) / denom


def prediction_error_interval(
    y_true: np.ndarray, y_pred: np.ndarray, confidence: float = 0.8
) -> Tuple[float, float]:
    """Central ``confidence`` interval of the signed prediction error.

    Returns ``(low, high)`` such that ``confidence`` of the errors
    ``pred - true`` fall inside the interval — the green bounding box of
    Fig. 12.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    a, b = _validate(y_true, y_pred)
    errors = b - a
    tail = (1.0 - confidence) / 2.0
    low = float(np.quantile(errors, tail))
    high = float(np.quantile(errors, 1.0 - tail))
    return low, high

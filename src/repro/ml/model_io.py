"""Serialisation helpers for the ML models (JSON files on disk)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ConfigurationError
from .decision_tree import DecisionTreeRegressor
from .random_forest import RandomForestRegressor

__all__ = ["model_to_dict", "model_from_dict", "save_model", "load_model"]

_MODEL_KINDS = {
    "decision_tree": DecisionTreeRegressor,
    "random_forest": RandomForestRegressor,
}


def model_to_dict(model: Union[DecisionTreeRegressor, RandomForestRegressor]) -> Dict[str, Any]:
    """Serialise a fitted model to a JSON-friendly dictionary."""
    return model.to_dict()


def model_from_dict(payload: Dict[str, Any]):
    """Rebuild a model from :func:`model_to_dict` output."""
    kind = payload.get("kind")
    try:
        cls = _MODEL_KINDS[kind]
    except KeyError as exc:
        raise ConfigurationError(f"unknown model kind {kind!r}") from exc
    return cls.from_dict(payload)


def save_model(model, path: Union[str, Path]) -> Path:
    """Write a model to ``path`` as JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(model_to_dict(model)), encoding="utf-8")
    return target


def load_model(path: Union[str, Path]):
    """Load a model previously written by :func:`save_model`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return model_from_dict(payload)

"""CART regression tree implemented on NumPy.

The tree greedily minimises the sum of squared errors; split search is
vectorised per feature using cumulative sums over the sorted targets, so
fitting on the few thousand (file × error bound) samples the paper's
training sets contain takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError, ModelNotFittedError

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """A tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: int = -1
    right: int = -1
    n_samples: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "value": self.value,
            "left": self.left,
            "right": self.right,
            "n_samples": self.n_samples,
        }


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Return ``(feature, threshold, sse_gain)`` of the best split, or None."""
    n = y.size
    total_sum = float(y.sum())
    total_sq = float(np.dot(y, y))
    parent_sse = total_sq - total_sum * total_sum / n
    best = None
    best_gain = 1e-12
    for feat in feature_indices:
        column = X[:, feat]
        order = np.argsort(column, kind="stable")
        sorted_x = column[order]
        sorted_y = y[order]
        # Candidate split positions: between distinct consecutive x values.
        cum_sum = np.cumsum(sorted_y)
        cum_sq = np.cumsum(sorted_y * sorted_y)
        counts_left = np.arange(1, n + 1, dtype=np.float64)
        valid = np.ones(n - 1, dtype=bool) if n > 1 else np.zeros(0, dtype=bool)
        if valid.size == 0:
            continue
        valid &= sorted_x[1:] > sorted_x[:-1]
        left_counts = counts_left[:-1]
        right_counts = n - left_counts
        valid &= (left_counts >= min_samples_leaf) & (right_counts >= min_samples_leaf)
        if not valid.any():
            continue
        left_sum = cum_sum[:-1]
        left_sq = cum_sq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse_left = left_sq - left_sum * left_sum / left_counts
        sse_right = right_sq - right_sum * right_sum / right_counts
        gain = parent_sse - (sse_left + sse_right)
        gain[~valid] = -np.inf
        idx = int(np.argmax(gain))
        if gain[idx] > best_gain:
            best_gain = float(gain[idx])
            threshold = float(0.5 * (sorted_x[idx] + sorted_x[idx + 1]))
            best = (int(feat), threshold, best_gain)
    return best


class DecisionTreeRegressor:
    """Greedy CART regression tree."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise ConfigurationError("max_features must be in (0, 1]")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: List[_Node] = []
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether the tree has been fitted."""
        return bool(self._nodes)

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree to a design matrix ``X`` and targets ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ConfigurationError("X must be a 2-D design matrix")
        if X.shape[0] != y.size:
            raise ConfigurationError(
                f"X has {X.shape[0]} rows but y has {y.size} targets"
            )
        if X.shape[0] == 0:
            raise ConfigurationError("cannot fit a tree on an empty training set")
        self._n_features = X.shape[1]
        self._nodes = []
        rng = np.random.default_rng(self.random_state)
        self._grow(X, y, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> int:
        node_index = len(self._nodes)
        node = _Node(value=float(y.mean()), n_samples=int(y.size))
        self._nodes.append(node)
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node_index
        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < 1.0:
            k = max(1, int(round(n_features * self.max_features)))
            feature_indices = rng.choice(n_features, size=k, replace=False)
        else:
            feature_indices = np.arange(n_features)
        split = _best_split(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node_index
        feat, threshold, _ = split
        mask = X[:, feat] <= threshold
        if mask.all() or not mask.any():
            return node_index
        node.feature = feat
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node_index

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a design matrix ``X``."""
        if not self.is_fitted:
            raise ModelNotFittedError("decision tree has not been fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X.reshape(1, -1)
        if X.shape[1] != self._n_features:
            raise ConfigurationError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self._nodes[0]
            while node.feature >= 0:
                node = self._nodes[node.left if row[node.feature] <= node.threshold else node.right]
            out[i] = node.value
        return out[0:1] if single else out

    def feature_importances(self) -> np.ndarray:
        """Split-count based importance per feature (normalised to sum 1)."""
        if not self.is_fitted:
            raise ModelNotFittedError("decision tree has not been fitted")
        importances = np.zeros(self._n_features, dtype=np.float64)
        for node in self._nodes:
            if node.feature >= 0:
                importances[node.feature] += node.n_samples
        total = importances.sum()
        return importances / total if total > 0 else importances

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise the fitted tree to a JSON-friendly dictionary."""
        return {
            "kind": "decision_tree",
            "params": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
            },
            "n_features": self._n_features,
            "nodes": [node.as_dict() for node in self._nodes],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DecisionTreeRegressor":
        """Rebuild a tree serialised with :meth:`to_dict`."""
        tree = cls(**payload["params"])
        tree._n_features = payload["n_features"]
        tree._nodes = [_Node(**node) for node in payload["nodes"]]
        return tree

"""The Ocelot HTTP gateway: REST job control + live event streaming.

``repro.gateway`` puts a network face on the job service so clients
reach it over HTTP instead of in-process Python:

* **REST job control** — ``POST /v1/jobs`` submits a JSON
  :class:`~repro.service.spec.TransferSpec` (dataset as a generation
  recipe), ``GET /v1/jobs[?tenant=]`` lists, ``GET /v1/jobs/{id}``
  inspects, ``GET /v1/jobs/{id}/wait`` blocks, and
  ``POST /v1/jobs/{id}/cancel`` stops a job mid-phase;
* **plan groups** — ``POST /v1/plan-groups`` validates *every* spec of
  a batch before admitting *any*, then fans the group out concurrently
  through the scheduler (``GET /v1/plan-groups/{id}`` tracks it);
* **live streaming** — ``GET /v1/jobs/{id}/events`` is a server-sent-
  event stream of the job's :class:`~repro.service.events.JobEvent`
  feed with ``Last-Event-ID`` resume, fed by the
  :class:`~repro.gateway.bus.EventBus`;
* **operations** — ``GET /healthz`` and a JSON ``GET /metricsz``
  (queue depths, per-tenant in-flight, jobs/sec, bus stats).

Everything is stdlib (``http.server`` + threads); the
:class:`~repro.gateway.driver.GatewayDriver` serialises the
multi-threaded front end onto the cooperative single-threaded
scheduler.  Start one with :func:`create_gateway` or
``ocelot serve --host --port``.
"""

from __future__ import annotations

from .app import GatewayAPI, spec_from_payload
from .bus import EventBus, Subscription
from .driver import GatewayDriver, PlanGroup, UnknownGroupError, UnknownJobError
from .server import Gateway, create_gateway

__all__ = [
    "EventBus",
    "Gateway",
    "GatewayAPI",
    "GatewayDriver",
    "PlanGroup",
    "Subscription",
    "UnknownGroupError",
    "UnknownJobError",
    "create_gateway",
    "spec_from_payload",
]

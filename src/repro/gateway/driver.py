"""Thread-safe driver around :class:`~repro.service.api.OcelotService`.

The service layer is cooperative and single-threaded by design: the
:class:`~repro.service.scheduler.JobScheduler` advances jobs one phase
per ``step()`` and expects exactly one caller.  An HTTP gateway has
the opposite shape — many request threads arriving at once — so the
:class:`GatewayDriver` owns the bridge:

* **one lock** around every touch of the service/scheduler (submission,
  cancellation, record reads), so request handlers never race the
  phase machine;
* **one background thread** that drains the scheduler a single phase
  step at a time, releasing the lock between steps — status reads and
  new submissions interleave with a running batch instead of blocking
  behind it, and when the queue drains the shared simulation clock is
  advanced to the combined makespan exactly like
  ``JobScheduler.drain()`` does;
* after every step the driver publishes newly-emitted
  :class:`~repro.service.events.JobEvent` records to the
  :class:`~repro.gateway.bus.EventBus` (each event exactly once, in
  feed order) and signals per-job completion events that
  :meth:`wait` blocks on — HTTP handlers never run scheduler code in
  a request thread.

Plan groups (the batch submit endpoint) also live here: *every* spec of
a group is validated — including the typed admission check — before
*any* job is admitted, so a group is all-or-nothing at the boundary and
then fans out concurrently through the ordinary scheduler interleaving.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..service import JobHandle, OcelotService, TransferSpec
from ..service.events import JobEvent
from .bus import EventBus

__all__ = ["GatewayDriver", "PlanGroup", "UnknownJobError", "UnknownGroupError"]

_SUMMARY_DROP = ("events", "timeline")


class UnknownJobError(KeyError):
    """Looked up a job id the service has never seen (HTTP 404)."""


class UnknownGroupError(KeyError):
    """Looked up a plan-group id the gateway has never seen (HTTP 404)."""


@dataclass
class PlanGroup:
    """One batch of jobs admitted atomically by ``POST /v1/plan-groups``."""

    group_id: str
    label: str
    job_ids: List[str] = field(default_factory=list)
    submitted_at: float = 0.0

    def as_dict(self, statuses: Dict[str, str]) -> Dict[str, object]:
        """JSON record of the group given its jobs' current statuses."""
        counts: Dict[str, int] = {}
        for job_id in self.job_ids:
            status = statuses.get(job_id, "unknown")
            counts[status] = counts.get(status, 0) + 1
        terminal = ("completed", "failed", "cancelled")
        finished = sum(counts.get(status, 0) for status in terminal)
        if finished < len(self.job_ids):
            status = "running"
        elif counts.get("completed", 0) == len(self.job_ids):
            status = "completed"
        elif counts.get("completed", 0) == 0:
            status = "failed"
        else:
            status = "partial_failure"
        return {
            "group_id": self.group_id,
            "label": self.label,
            "status": status,
            "submitted_at": self.submitted_at,
            "jobs": list(self.job_ids),
            "total": len(self.job_ids),
            "status_counts": counts,
        }


class GatewayDriver:
    """Serialise a multi-threaded HTTP front end onto the job service."""

    def __init__(self, service: OcelotService, bus: Optional[EventBus] = None,
                 idle_poll_s: float = 0.02) -> None:
        self.service = service
        self.bus = bus or EventBus()
        self._idle_poll_s = idle_poll_s
        self._lock = threading.RLock()
        self._kick = threading.Event()
        self._stopped = threading.Event()
        self._paused = False
        #: Per-job count of events already published to the bus.
        self._published: Dict[str, int] = {}
        #: Per-job completion signals for :meth:`wait`.
        self._done: Dict[str, threading.Event] = {}
        self._groups: Dict[str, PlanGroup] = {}
        self._group_counter = itertools.count(1)
        #: Whether the simulation clock still trails the makespan.
        self._clock_dirty = False
        self._started_wall = time.monotonic()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "GatewayDriver":
        """Launch the background scheduler thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stopped.clear()
            self._thread = threading.Thread(
                target=self._run, name="ocelot-gateway-driver", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the scheduler thread and close the bus."""
        self._stopped.set()
        self._kick.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.bus.close()

    @property
    def running(self) -> bool:
        """Whether the driver accepts work (False after :meth:`stop`)."""
        return not self._stopped.is_set()

    def pause(self) -> None:
        """Suspend phase stepping (jobs keep queueing; used by tests)."""
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        """Resume phase stepping after :meth:`pause`."""
        with self._lock:
            self._paused = False
        self._kick.set()

    def _run(self) -> None:
        while not self._stopped.is_set():
            progressed = False
            with self._lock:
                if not self._paused:
                    progressed = self.service.scheduler.step()
                    if progressed:
                        self._flush()
                    elif self._clock_dirty:
                        # Queue drained: sync the shared clock to the
                        # combined makespan, as JobScheduler.drain() does.
                        self.service.testbed.clock.advance_to(
                            self.service.scheduler.makespan_s
                        )
                        self._clock_dirty = False
            if not progressed:
                self._kick.wait(timeout=self._idle_poll_s)
                self._kick.clear()

    # ------------------------------------------------------------------ #
    # Event plumbing (callers hold the lock)
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Publish newly-emitted events; signal newly-terminal jobs."""
        for handle in self.service.jobs():
            feed = handle.events()
            seen = self._published.get(handle.job_id, 0)
            if len(feed) > seen:
                self.bus.publish_all(feed[seen:])
                self._published[handle.job_id] = len(feed)
            if handle.status.is_terminal:
                done = self._done.get(handle.job_id)
                if done is not None and not done.is_set():
                    done.set()

    def _handle(self, job_id: str) -> JobHandle:
        if self.service.scheduler.get(job_id) is None:
            raise UnknownJobError(job_id)
        return self.service.job(job_id)

    # ------------------------------------------------------------------ #
    # Submission / cancellation
    # ------------------------------------------------------------------ #
    def submit(self, spec: TransferSpec) -> Dict[str, object]:
        """Validate + enqueue one spec; returns the job's summary record."""
        with self._lock:
            handle = self.service.submit(spec)
            self._done[handle.job_id] = threading.Event()
            self._clock_dirty = True
            self._flush()
            record = self._summary(handle)
        self._kick.set()
        return record

    def submit_group(self, specs: Sequence[TransferSpec],
                     label: str = "") -> Dict[str, object]:
        """Admit a whole plan group atomically, then fan it out.

        Every spec is validated (config overrides, mode, endpoints,
        route, compressor, dataset, tenant/priority, and the typed
        admission check) **before any job is admitted** — one bad spec
        rejects the group with no partial state.  Admitted jobs then
        interleave through the scheduler like any other batch.
        """
        with self._lock:
            for index, spec in enumerate(specs):
                try:
                    job_config = spec.validate(self.service.config, self.service.testbed)
                    self.service.scheduler.check_admissible(
                        spec.resolved_tenant(job_config),
                        max(job_config.compression_nodes,
                            job_config.decompression_nodes),
                    )
                except Exception as exc:
                    exc.args = (f"plan group spec #{index}: {exc}",)
                    raise
            group = PlanGroup(
                group_id=f"pg-{next(self._group_counter):04d}",
                label=label,
                submitted_at=self.service.testbed.clock.now,
            )
            for spec in specs:
                handle = self.service.submit(spec)
                self._done[handle.job_id] = threading.Event()
                group.job_ids.append(handle.job_id)
            self._groups[group.group_id] = group
            self._clock_dirty = True
            self._flush()
            record = group.as_dict(self._statuses(group))
        self._kick.set()
        return record

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel one job; the record says whether this call stopped it."""
        with self._lock:
            handle = self._handle(job_id)
            cancelled = handle.cancel()
            self._flush()
            record = self._summary(handle)
            record["cancelled"] = cancelled
        return record

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _summary(self, handle: JobHandle) -> Dict[str, object]:
        record = handle.as_dict()
        for key in _SUMMARY_DROP:
            record.pop(key, None)
        return record

    def _statuses(self, group: PlanGroup) -> Dict[str, str]:
        return {
            job_id: self.service.job(job_id).status.value
            for job_id in group.job_ids
            if self.service.scheduler.get(job_id) is not None
        }

    def record(self, job_id: str, full: bool = False) -> Dict[str, object]:
        """One job's JSON record (``full`` adds events + timeline)."""
        with self._lock:
            handle = self._handle(job_id)
            return handle.as_dict() if full else self._summary(handle)

    def records(self, tenant: Optional[str] = None) -> List[Dict[str, object]]:
        """Summary records of every retained job, in submission order."""
        with self._lock:
            return [
                self._summary(handle)
                for handle in self.service.jobs()
                if tenant is None or handle.tenant == tenant
            ]

    def events_since(self, job_id: str, since_seq: int = 0) -> List[JobEvent]:
        """A job's feed after ``since_seq`` (the SSE replay/backfill path)."""
        with self._lock:
            return self._handle(job_id).events(since_seq=since_seq)

    def job_status(self, job_id: str) -> str:
        """Current lifecycle state of one job."""
        with self._lock:
            return self._handle(job_id).status.value

    def group(self, group_id: str) -> Dict[str, object]:
        """One plan group's record with live per-job status counts."""
        with self._lock:
            plan = self._groups.get(group_id)
            if plan is None:
                raise UnknownGroupError(group_id)
            return plan.as_dict(self._statuses(plan))

    def groups(self) -> List[Dict[str, object]]:
        """All plan groups, in submission order."""
        with self._lock:
            return [plan.as_dict(self._statuses(plan))
                    for plan in self._groups.values()]

    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block (off-lock) until a job is terminal; False on timeout."""
        with self._lock:
            handle = self._handle(job_id)
            if handle.status.is_terminal:
                return True
            done = self._done.setdefault(job_id, threading.Event())
        return done.wait(timeout=timeout)

    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, object]:
        """The ``/metricsz`` snapshot: queues, tenants, throughput, bus."""
        with self._lock:
            scheduler = self.service.scheduler
            status_counts: Dict[str, int] = {}
            for handle in self.service.jobs():
                status = handle.status.value
                status_counts[status] = status_counts.get(status, 0) + 1
            completed = status_counts.get("completed", 0)
            uptime = max(time.monotonic() - self._started_wall, 1e-9)
            makespan = scheduler.makespan_s
            admission = scheduler.admission_depths()
            return {
                "uptime_s": round(uptime, 3),
                "jobs": {"total": len(self.service.jobs()), **status_counts},
                "queue_depths": {
                    "active": status_counts.get("pending", 0)
                    + status_counts.get("running", 0),
                    "admission": admission,
                    "admission_total": sum(admission.values()),
                },
                "tenants": {"in_flight": scheduler.in_flight()},
                "jobs_per_sec": {
                    "wall": round(completed / uptime, 4),
                    "simulated": round(completed / makespan, 4) if makespan > 0 else 0.0,
                },
                "makespan_s": makespan,
                "clock_s": self.service.testbed.clock.now,
                "plan_groups": len(self._groups),
                "bus": self.bus.describe(),
            }

"""Pub/sub bridge between job event feeds and live gateway clients.

Jobs append :class:`~repro.service.events.JobEvent` records to their
own feeds as the scheduler steps them; HTTP clients want those events
*pushed* as they happen.  The :class:`EventBus` sits in between: the
gateway driver publishes every newly-emitted event exactly once, and
each live client (an SSE stream, a test harness) holds a
:class:`Subscription` — a **bounded** per-subscriber queue, so one slow
client can never make the scheduler thread block or hold memory for
the whole fleet.

Overflow policy is drop-oldest: a full subscriber queue loses its
oldest event and the subscription counts the gap.  Consumers recover
losslessly because every event carries a per-job monotonic ``seq`` —
the SSE handler notices the gap (``seq`` jumped) and backfills from
the job's authoritative feed, which is exactly the ``Last-Event-ID``
resume path reused mid-stream.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, List, Optional

from ..service.events import JobEvent

__all__ = ["EventBus", "Subscription"]

#: Sentinel delivered to subscribers when the bus shuts down.
CLOSED = object()


class Subscription:
    """One subscriber's bounded event queue (create via ``EventBus.subscribe``)."""

    def __init__(self, bus: "EventBus", job_id: Optional[str], maxsize: int) -> None:
        self._bus = bus
        #: Restrict delivery to one job's feed (``None`` = all jobs).
        self.job_id = job_id
        self.queue: "queue.Queue[object]" = queue.Queue(maxsize=max(1, maxsize))
        #: Events lost to overflow (consumers backfill from the feed).
        self.dropped = 0
        self.closed = False

    def matches(self, event: JobEvent) -> bool:
        """Whether this subscription wants ``event``."""
        return self.job_id is None or event.job_id == self.job_id

    def get(self, timeout: Optional[float] = None) -> Optional[object]:
        """Next event, ``CLOSED`` on shutdown, or ``None`` on timeout."""
        try:
            return self.queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def cancel(self) -> None:
        """Detach from the bus (idempotent)."""
        self._bus.unsubscribe(self)


class EventBus:
    """Fan job events out to bounded per-subscriber queues."""

    def __init__(self, default_maxsize: int = 1024) -> None:
        self._default_maxsize = default_maxsize
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._closed = False
        #: Totals for ``/metricsz``.
        self.published = 0
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def subscribe(self, job_id: Optional[str] = None,
                  maxsize: Optional[int] = None) -> Subscription:
        """Register a subscriber (optionally scoped to one job's feed)."""
        sub = Subscription(self, job_id, maxsize or self._default_maxsize)
        with self._lock:
            if self._closed:
                sub.closed = True
                sub.queue.put(CLOSED)
            else:
                self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscriber; its queue receives no further events."""
        with self._lock:
            sub.closed = True
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        """Live subscriptions (metrics view)."""
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------ #
    def publish(self, event: JobEvent) -> None:
        """Deliver one event to every matching subscriber, never blocking.

        A full queue drops its oldest entry to make room — the slow
        consumer pays with a backfill, not the publisher with a stall.
        """
        with self._lock:
            self.published += 1
            for sub in self._subscribers:
                if not sub.matches(event):
                    continue
                while True:
                    try:
                        sub.queue.put_nowait(event)
                        break
                    except queue.Full:
                        try:
                            sub.queue.get_nowait()
                            sub.dropped += 1
                            self.dropped += 1
                        except queue.Empty:  # raced with the consumer
                            continue

    def publish_all(self, events: List[JobEvent]) -> None:
        """Publish a batch in feed order."""
        for event in events:
            self.publish(event)

    def close(self) -> None:
        """Shut down: every subscriber's next read returns ``CLOSED``."""
        with self._lock:
            self._closed = True
            subscribers, self._subscribers = self._subscribers, []
            for sub in subscribers:
                sub.closed = True
                try:
                    sub.queue.put_nowait(CLOSED)
                except queue.Full:
                    try:
                        sub.queue.get_nowait()
                    except queue.Empty:
                        pass
                    try:
                        sub.queue.put_nowait(CLOSED)
                    except queue.Full:
                        pass

    def describe(self) -> Dict[str, object]:
        """Metrics snapshot for ``/metricsz``."""
        with self._lock:
            return {
                "subscribers": len(self._subscribers),
                "published": self.published,
                "dropped": self.dropped,
            }

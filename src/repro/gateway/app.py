"""Framework-free HTTP route logic of the gateway.

The environment is offline and dependency-frozen, so there is no
FastAPI/Flask here: :class:`GatewayAPI` is a plain router — it takes
``(method, path, query, body)`` from whatever HTTP server fronts it and
returns ``(status, JSON payload)``.  All service access goes through
the :class:`~repro.gateway.driver.GatewayDriver`, never the raw
service, so route handlers inherit its locking.

The wire format for a job is a JSON :class:`~repro.service.spec.TransferSpec`
whose dataset is a *generation recipe* (the same recipe the durable job
store persists for crash recovery) — datasets are deterministic, so a
recipe fully identifies the bytes a client wants moved::

    {
      "dataset": {"application": "miranda", "snapshots": 1, "scale": 0.03},
      "source": "anvil", "destination": "cori",
      "mode": "compressed", "tenant": "astro", "priority": "high",
      "overrides": {"error_bound": 1e-4}
    }

Error mapping is structural, not string-matched: every
:class:`~repro.errors.ReproError` carries a machine-readable ``code``
that lands in the JSON error body — :class:`~repro.errors.AdmissionError`
maps to HTTP 429, any other library error raised while handling a
request (they are all boundary validation) to HTTP 400, unknown
job/group ids to 404, and everything unexpected to 500.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Tuple

from ..datasets import generate_application
from ..errors import AdmissionError, OrchestrationError, ReproError
from ..service import TransferSpec
from .driver import GatewayDriver, UnknownGroupError, UnknownJobError

__all__ = ["GatewayAPI", "spec_from_payload"]

Response = Tuple[int, Dict[str, object]]

_SPEC_KEYS = frozenset(
    {"dataset", "source", "destination", "mode", "label", "tenant",
     "priority", "overrides"}
)
_DATASET_KEYS = frozenset(
    {"application", "snapshots", "scale", "seed", "fields", "dtype"}
)
#: Hard cap on one plan group (bounds validation work per request).
MAX_GROUP_SIZE = 256
#: Longest ``/wait`` hold (seconds) one request may ask for.
MAX_WAIT_S = 300.0


def spec_from_payload(payload: object) -> TransferSpec:
    """Build a :class:`TransferSpec` from its JSON wire form.

    Shape errors raise :class:`~repro.errors.OrchestrationError`
    (``invalid_request``); the dataset recipe is materialised here, so
    an unknown application fails before any job state exists.
    """
    if not isinstance(payload, dict):
        raise OrchestrationError(
            f"job spec must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - _SPEC_KEYS
    if unknown:
        raise OrchestrationError(
            f"unknown job spec field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_SPEC_KEYS)}"
        )
    recipe = payload.get("dataset")
    if not isinstance(recipe, dict) or "application" not in recipe:
        raise OrchestrationError(
            "job spec needs a 'dataset' object with at least an "
            "'application' name (a dataset generation recipe)"
        )
    unknown = set(recipe) - _DATASET_KEYS
    if unknown:
        raise OrchestrationError(
            f"unknown dataset recipe field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_DATASET_KEYS)}"
        )
    dataset = generate_application(**recipe)
    for key in ("source", "destination"):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise OrchestrationError(f"job spec needs a non-empty string {key!r}")
    overrides = payload.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise OrchestrationError("'overrides' must be a JSON object")
    return TransferSpec(
        dataset=dataset,
        source=payload["source"],
        destination=payload["destination"],
        mode=payload.get("mode"),
        label=str(payload.get("label") or ""),
        tenant=payload.get("tenant"),
        priority=payload.get("priority"),
        overrides=dict(overrides),
    )


def error_response(exc: BaseException) -> Response:
    """Map an exception to ``(HTTP status, JSON error body)``."""
    if isinstance(exc, UnknownJobError):
        return 404, {"error": f"unknown job {exc.args[0]!r}", "code": "unknown_job"}
    if isinstance(exc, UnknownGroupError):
        return 404, {"error": f"unknown plan group {exc.args[0]!r}",
                     "code": "unknown_plan_group"}
    if isinstance(exc, AdmissionError):
        return 429, exc.as_payload()
    if isinstance(exc, ReproError):
        return 400, exc.as_payload()
    if isinstance(exc, (json.JSONDecodeError, UnicodeDecodeError)):
        return 400, {"error": f"request body is not valid JSON: {exc}",
                     "code": "bad_json"}
    if isinstance(exc, (TypeError, ValueError, KeyError)):
        return 400, {"error": str(exc) or type(exc).__name__, "code": "bad_request"}
    return 500, {"error": f"{type(exc).__name__}: {exc}", "code": "internal_error"}


class GatewayAPI:
    """Route table of the gateway (everything except the SSE stream)."""

    def __init__(self, driver: GatewayDriver) -> None:
        self.driver = driver
        self._counts: Dict[str, int] = {}
        self._counts_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def count_request(self, route: str) -> None:
        """Tally one served request under its route pattern."""
        with self._counts_lock:
            self._counts[route] = self._counts.get(route, 0) + 1

    def request_counts(self) -> Dict[str, int]:
        """Requests served per route pattern since boot."""
        with self._counts_lock:
            return dict(self._counts)

    @staticmethod
    def sse_job_id(method: str, path: str) -> Optional[str]:
        """The job id when ``(method, path)`` is the SSE events route."""
        parts = [part for part in path.split("/") if part]
        if method == "GET" and len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                and parts[3] == "events":
            return parts[2]
        return None

    # ------------------------------------------------------------------ #
    def dispatch(self, method: str, path: str, query: Dict[str, List[str]],
                 body: bytes) -> Response:
        """Serve one JSON request; exceptions become error responses."""
        try:
            return self._route(method, path, query, body)
        except Exception as exc:  # noqa: BLE001 - mapped to HTTP statuses
            return error_response(exc)

    def _route(self, method: str, path: str, query: Dict[str, List[str]],
               body: bytes) -> Response:
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            self.count_request("GET /healthz")
            return 200, {"status": "ok", "clock_s": self.driver.service.testbed.clock.now}
        if parts == ["metricsz"] and method == "GET":
            self.count_request("GET /metricsz")
            metrics = self.driver.metrics()
            metrics["http"] = {"requests": self.request_counts()}
            return 200, metrics
        if parts[:2] == ["v1", "jobs"]:
            return self._route_jobs(method, parts[2:], query, body)
        if parts[:2] == ["v1", "plan-groups"]:
            return self._route_groups(method, parts[2:], body)
        return 404, {"error": f"no route for {path!r}", "code": "not_found"}

    # ------------------------------------------------------------------ #
    def _route_jobs(self, method: str, rest: List[str],
                    query: Dict[str, List[str]], body: bytes) -> Response:
        if not rest:
            if method == "POST":
                self.count_request("POST /v1/jobs")
                spec = spec_from_payload(_parse_json(body))
                return 201, self.driver.submit(spec)
            if method == "GET":
                self.count_request("GET /v1/jobs")
                tenant = _first(query, "tenant")
                records = self.driver.records(tenant=tenant)
                return 200, {"jobs": records, "count": len(records)}
            return _method_not_allowed(method)
        job_id = rest[0]
        if len(rest) == 1:
            if method != "GET":
                return _method_not_allowed(method)
            self.count_request("GET /v1/jobs/{id}")
            return 200, self.driver.record(job_id, full=True)
        if len(rest) == 2 and rest[1] == "cancel":
            if method != "POST":
                return _method_not_allowed(method)
            self.count_request("POST /v1/jobs/{id}/cancel")
            return 200, self.driver.cancel(job_id)
        if len(rest) == 2 and rest[1] == "wait":
            if method != "GET":
                return _method_not_allowed(method)
            self.count_request("GET /v1/jobs/{id}/wait")
            timeout = min(float(_first(query, "timeout") or 30.0), MAX_WAIT_S)
            finished = self.driver.wait(job_id, timeout=timeout)
            record = self.driver.record(job_id, full=False)
            record["timed_out"] = not finished
            return (200 if finished else 408), record
        return 404, {"error": f"no route for /v1/jobs/{'/'.join(rest)}",
                     "code": "not_found"}

    def _route_groups(self, method: str, rest: List[str], body: bytes) -> Response:
        if not rest:
            if method == "POST":
                self.count_request("POST /v1/plan-groups")
                payload = _parse_json(body)
                if not isinstance(payload, dict) or not isinstance(
                        payload.get("jobs"), list):
                    raise OrchestrationError(
                        "plan group body needs a 'jobs' array of job specs"
                    )
                specs_json = payload["jobs"]
                if not specs_json:
                    raise OrchestrationError("plan group 'jobs' array is empty")
                if len(specs_json) > MAX_GROUP_SIZE:
                    raise OrchestrationError(
                        f"plan group exceeds {MAX_GROUP_SIZE} jobs "
                        f"({len(specs_json)} submitted)"
                    )
                specs = []
                for index, spec_json in enumerate(specs_json):
                    try:
                        specs.append(spec_from_payload(spec_json))
                    except ReproError as exc:
                        exc.args = (f"plan group spec #{index}: {exc}",)
                        raise
                label = str(payload.get("label") or "")
                return 201, self.driver.submit_group(specs, label=label)
            if method == "GET":
                self.count_request("GET /v1/plan-groups")
                groups = self.driver.groups()
                return 200, {"plan_groups": groups, "count": len(groups)}
            return _method_not_allowed(method)
        if len(rest) == 1:
            if method != "GET":
                return _method_not_allowed(method)
            self.count_request("GET /v1/plan-groups/{id}")
            return 200, self.driver.group(rest[0])
        return 404, {"error": "no such plan-group route", "code": "not_found"}


# --------------------------------------------------------------------- #
def _parse_json(body: bytes) -> object:
    if not body:
        raise OrchestrationError("request body is empty; expected JSON")
    return json.loads(body.decode("utf-8"))


def _first(query: Dict[str, List[str]], key: str) -> Optional[str]:
    values = query.get(key)
    return values[0] if values else None


def _method_not_allowed(method: str) -> Response:
    return 405, {"error": f"method {method} not allowed here",
                 "code": "method_not_allowed"}

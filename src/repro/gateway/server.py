"""The network face of the gateway: stdlib threaded HTTP + SSE.

No web framework ships in this environment, so the server is a
:class:`http.server.ThreadingHTTPServer` — one OS thread per in-flight
request, which is exactly the shape the
:class:`~repro.gateway.driver.GatewayDriver` serialises.  JSON routes
delegate to :class:`~repro.gateway.app.GatewayAPI`; the one streaming
route, ``GET /v1/jobs/{id}/events``, is served here because it owns the
socket for the stream's lifetime.

SSE framing (one frame per :class:`~repro.service.events.JobEvent`)::

    id: <seq>
    event: <kind>
    data: <event JSON>
    <blank line>

The ``id`` is the job's monotonic event ``seq``, so a reconnecting
client sends the standard ``Last-Event-ID`` header (or ``?since=``) and
the stream resumes after that event instead of replaying the feed.  The
live tail comes from a bus subscription; a queue-overflow gap (``seq``
jumped) is healed by backfilling from the job's authoritative feed.
Streams close after delivering the job's terminal event.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.config import OcelotConfig
from ..service import OcelotService, TenantQuota
from ..service.events import JobEvent
from .app import GatewayAPI, error_response
from .bus import CLOSED
from .driver import GatewayDriver, UnknownJobError

__all__ = ["Gateway", "create_gateway"]

#: How long a live SSE stream waits on its queue between keepalives.
_SSE_POLL_S = 0.25


class _GatewayHTTPServer(ThreadingHTTPServer):
    """Threaded server carrying the gateway wiring for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    api: GatewayAPI
    driver: GatewayDriver


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests into the gateway API (plus the SSE stream)."""

    protocol_version = "HTTP/1.1"
    server: _GatewayHTTPServer

    # The stdlib handler logs every request to stderr; a gateway under
    # benchmark load would drown the terminal.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _query(self) -> Tuple[str, Dict[str, List[str]]]:
        parsed = urlsplit(self.path)
        return parsed.path, parse_qs(parsed.query)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        path, query = self._query()
        job_id = self.server.api.sse_job_id("GET", path)
        if job_id is not None:
            self._serve_sse(job_id, query)
            return
        status, payload = self.server.api.dispatch("GET", path, query, b"")
        self._send_json(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        path, query = self._query()
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        status, payload = self.server.api.dispatch("POST", path, query, body)
        self._send_json(status, payload)

    # ------------------------------------------------------------------ #
    # Server-sent events
    # ------------------------------------------------------------------ #
    def _write_event(self, event: JobEvent) -> None:
        data = json.dumps(event.as_dict(), separators=(",", ":"), default=str)
        frame = f"id: {event.seq}\nevent: {event.kind}\ndata: {data}\n\n"
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()

    def _serve_sse(self, job_id: str, query: Dict[str, List[str]]) -> None:
        driver = self.server.driver
        last_raw = self.headers.get("Last-Event-ID") or (
            query.get("since") or [""])[0]
        try:
            last = max(0, int(last_raw)) if last_raw else 0
        except ValueError:
            self._send_json(400, {"error": f"bad Last-Event-ID {last_raw!r}",
                                  "code": "bad_request"})
            return
        # Subscribe *before* snapshotting the feed so no event can fall
        # between replay and live tail; duplicates are filtered by seq.
        subscription = driver.bus.subscribe(job_id)
        try:
            try:
                replay = driver.events_since(job_id, last)
            except UnknownJobError as exc:
                status, payload = error_response(exc)
                self._send_json(status, payload)
                return
            self.server.api.count_request("GET /v1/jobs/{id}/events")
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
            for event in replay:
                self._write_event(event)
                last = event.seq
                if event.is_terminal:
                    return
            while driver.running:
                item = subscription.get(timeout=_SSE_POLL_S)
                if item is CLOSED:
                    return
                if item is None:
                    # Comment frame: keeps proxies and clients from
                    # timing out an intentionally quiet stream.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                assert isinstance(item, JobEvent)
                if item.seq <= last:
                    continue
                if item.seq > last + 1:
                    # Bus overflow gap: heal from the authoritative feed.
                    for event in driver.events_since(job_id, last):
                        self._write_event(event)
                        last = event.seq
                        if event.is_terminal:
                            return
                    continue
                self._write_event(item)
                last = item.seq
                if item.is_terminal:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return
        finally:
            subscription.cancel()


class Gateway:
    """One bound HTTP gateway: server + driver + bus, started together."""

    def __init__(
        self,
        service: Optional[OcelotService] = None,
        config: Optional[OcelotConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self.service = service or OcelotService(
            config or OcelotConfig(), quotas=quotas
        )
        self.driver = GatewayDriver(self.service)
        self.api = GatewayAPI(self.driver)
        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.api = self.api
        self._httpd.driver = self.driver
        self._server_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        """Bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the OS-assigned one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running gateway."""
        return f"http://{self.host}:{self.port}"

    @property
    def bus(self):
        """The event bus feeding SSE subscribers."""
        return self.driver.bus

    # ------------------------------------------------------------------ #
    def start(self) -> "Gateway":
        """Start the driver thread and the HTTP accept loop."""
        self.driver.start()
        if self._server_thread is None or not self._server_thread.is_alive():
            self._server_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="ocelot-gateway-http",
                daemon=True,
            )
            self._server_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests, then stop the scheduler driver."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        self.driver.stop()

    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread (the CLI path)."""
        self.driver.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()
            self.driver.stop()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def create_gateway(
    config: Optional[OcelotConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[OcelotService] = None,
    quotas: Optional[Dict[str, TenantQuota]] = None,
) -> Gateway:
    """Build (but do not start) a gateway; ``port=0`` picks a free port."""
    return Gateway(service=service, config=config, host=host, port=port,
                   quotas=quotas)

"""Deterministic random-number helpers.

All synthetic data generation and simulation randomness flows through
``numpy.random.Generator`` objects created here, so every experiment in
the benchmark suite is reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = ["rng_from_seed", "derive_seed"]


def derive_seed(*parts: Union[str, int]) -> int:
    """Derive a stable 63-bit seed from a sequence of strings/ints.

    Hashing makes per-field and per-file seeds independent even when the
    caller composes them from small consecutive integers.
    """
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def rng_from_seed(seed: Optional[Union[int, str]] = None, *extra: Union[str, int]) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from a seed and optional qualifiers."""
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, str) or extra:
        seed = derive_seed(seed, *extra)
    return np.random.default_rng(int(seed))

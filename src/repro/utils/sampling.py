"""Subsampling helpers for low-overhead feature extraction.

The quality predictor extracts features from roughly 1 % of the data
(one point in every hundred), which the paper reports keeps prediction
overhead at ~1.7 % of the compression time.
"""

from __future__ import annotations


import numpy as np

from ..errors import FeatureExtractionError

__all__ = ["strided_sample", "block_sample", "sample_indices"]


def strided_sample(data: np.ndarray, fraction: float = 0.01) -> np.ndarray:
    """Return a strided 1-D subsample containing roughly ``fraction`` of the data.

    Sampling is deterministic (every ``k``-th element in flattened order)
    so that repeated extractions of the same field produce identical
    features.
    """
    if not 0.0 < fraction <= 1.0:
        raise FeatureExtractionError(f"sampling fraction must be in (0, 1], got {fraction}")
    flat = np.asarray(data).ravel()
    if fraction >= 1.0 or flat.size == 0:
        return flat
    stride = max(1, int(round(1.0 / fraction)))
    return flat[::stride]


def sample_indices(size: int, fraction: float, seed: int = 0) -> np.ndarray:
    """Return sorted random indices selecting ``fraction`` of ``size`` elements."""
    if not 0.0 < fraction <= 1.0:
        raise FeatureExtractionError(f"sampling fraction must be in (0, 1], got {fraction}")
    if size <= 0:
        raise FeatureExtractionError("size must be positive")
    count = max(1, int(round(size * fraction)))
    rng = np.random.default_rng(seed)
    idx = rng.choice(size, size=min(count, size), replace=False)
    return np.sort(idx)


def block_sample(data: np.ndarray, block: int = 8, fraction: float = 0.01) -> np.ndarray:
    """Sample whole blocks of ``block`` consecutive elements (flattened order).

    Block sampling preserves local smoothness so compressor-based features
    (e.g. Lorenzo prediction error, quantisation-bin statistics) computed
    on the sample resemble those of the full dataset much more closely
    than independent random points would.
    """
    if block <= 0:
        raise FeatureExtractionError("block size must be positive")
    flat = np.asarray(data).ravel()
    if flat.size == 0 or fraction >= 1.0:
        return flat
    n_blocks_total = max(1, flat.size // block)
    n_blocks_sampled = max(1, int(round(n_blocks_total * fraction)))
    stride = max(1, n_blocks_total // n_blocks_sampled)
    starts = np.arange(0, n_blocks_total, stride) * block
    pieces = [flat[s : s + block] for s in starts]
    return np.concatenate(pieces) if pieces else flat[:block]


def sampling_overhead_fraction(sample_size: int, full_size: int) -> float:
    """Fraction of full-data work represented by a sample of ``sample_size``."""
    if full_size <= 0:
        raise FeatureExtractionError("full_size must be positive")
    return float(sample_size) / float(full_size)

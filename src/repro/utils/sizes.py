"""Human-readable formatting of byte counts, durations and rates."""

from __future__ import annotations

__all__ = ["format_bytes", "format_duration", "format_rate", "MB", "GB", "TB"]

KB = 1024.0
MB = KB * 1024.0
GB = MB * 1024.0
TB = GB * 1024.0


def format_bytes(num_bytes: float) -> str:
    """Format a byte count using binary units (e.g. ``1.5 GiB``)."""
    value = float(num_bytes)
    for unit, threshold in (("TiB", TB), ("GiB", GB), ("MiB", MB), ("KiB", KB)):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {unit}"
    return f"{value:.0f} B"


def format_duration(seconds: float) -> str:
    """Format a duration, switching to minutes/hours for long intervals."""
    value = float(seconds)
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1.0:
        return f"{value * 1e3:.1f} ms"
    if value < 120.0:
        return f"{value:.2f} s"
    if value < 7200.0:
        return f"{value / 60.0:.1f} min"
    return f"{value / 3600.0:.2f} h"


def format_rate(bytes_per_second: float) -> str:
    """Format a throughput value such as ``1.02 GiB/s``."""
    return f"{format_bytes(bytes_per_second)}/s"

"""Clocks used by the transfer/FaaS simulation and by real measurements.

The simulation substrates (WAN transfer, batch scheduler, parallel
compression cost model) advance a :class:`SimulationClock` instead of
sleeping, which keeps end-to-end "transfers" of terabyte-scale datasets
instantaneous in wall-clock terms while preserving the timing structure
the paper analyses (compression time vs transfer time vs waiting time).
"""

from __future__ import annotations

import time
from typing import List, Tuple

__all__ = ["SimulationClock", "WallClock"]


class SimulationClock:
    """A manually advanced clock measured in seconds.

    The clock also records named events, which the reporting layer uses
    to build per-phase timelines (compression start/stop, transfer
    start/stop, node wait, ...).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._events: List[Tuple[float, str]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def record(self, label: str) -> float:
        """Record a named event at the current time and return that time."""
        self._events.append((self._now, label))
        return self._now

    @property
    def events(self) -> List[Tuple[float, str]]:
        """All recorded ``(time, label)`` events in insertion order."""
        return list(self._events)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` and clear recorded events."""
        self._now = float(start)
        self._events.clear()


class WallClock:
    """Thin wrapper over ``time.perf_counter`` with the same interface."""

    @property
    def now(self) -> float:
        """Current wall-clock time in seconds (monotonic)."""
        return time.perf_counter()

    def advance(self, seconds: float) -> float:  # pragma: no cover - trivial
        """Sleep for ``seconds`` (rarely used; provided for interface parity)."""
        if seconds > 0:
            time.sleep(seconds)
        return self.now

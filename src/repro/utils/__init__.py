"""Shared utilities: statistics, sampling, bit I/O, clocks and logging."""

from __future__ import annotations

from .stats import (
    byte_entropy,
    mean_squared_error,
    normalized_rmse,
    psnr,
    shannon_entropy,
    value_range,
    DataSummary,
    summarize,
)
from .sampling import strided_sample, block_sample, sample_indices
from .bitstream import BitReader, BitWriter
from .clock import SimulationClock, WallClock
from .sizes import format_bytes, format_duration, format_rate
from .rng import rng_from_seed, derive_seed

__all__ = [
    "byte_entropy",
    "mean_squared_error",
    "normalized_rmse",
    "psnr",
    "shannon_entropy",
    "value_range",
    "DataSummary",
    "summarize",
    "strided_sample",
    "block_sample",
    "sample_indices",
    "BitReader",
    "BitWriter",
    "SimulationClock",
    "WallClock",
    "format_bytes",
    "format_duration",
    "format_rate",
    "rng_from_seed",
    "derive_seed",
]

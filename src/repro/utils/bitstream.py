"""Bit-level reader/writer used by the Huffman and embedded encoders.

The writer accumulates bits most-significant-bit first into a
``bytearray``; the reader mirrors that layout.  Both are deliberately
simple (no buffering tricks) — compressors keep hot loops in NumPy and
only use these classes for header/auxiliary streams and for the canonical
Huffman coder on moderate symbol counts.
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import EncodingError

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate bits MSB-first and emit them as ``bytes``."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._nbits = 0
        self._total_bits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        self._total_bits += 1
        if self._nbits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` least-significant bits of ``value``, MSB first."""
        if nbits < 0:
            raise EncodingError("cannot write a negative number of bits")
        for shift in range(nbits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise EncodingError("unary coding requires a non-negative value")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._total_bits

    def getvalue(self) -> bytes:
        """Return the written bits padded with zero bits to a whole byte."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append((self._current << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Read bits MSB-first from a ``bytes`` object."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def remaining_bits(self) -> int:
        """Number of unread bits left in the stream."""
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._pos >= len(self._data) * 8:
            raise EncodingError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as an unsigned integer."""
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded non-negative integer."""
        count = 0
        while self.read_bit() == 1:
            count += 1
        return count


def pack_bits(bits: Iterable[int]) -> bytes:
    """Pack an iterable of 0/1 values into bytes (helper for tests)."""
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    return writer.getvalue()


def unpack_bits(data: bytes, count: int) -> List[int]:
    """Unpack ``count`` bits from ``data`` (helper for tests)."""
    reader = BitReader(data)
    return [reader.read_bit() for _ in range(count)]

"""Statistical helpers used by compressors, features and evaluation.

These mirror the metrics used throughout the paper: PSNR (peak signal to
noise ratio), byte-level Shannon entropy, value range, and the basic
per-field summaries listed in Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict
from typing import Dict

import numpy as np

from ..errors import FeatureExtractionError

__all__ = [
    "value_range",
    "mean_squared_error",
    "normalized_rmse",
    "psnr",
    "shannon_entropy",
    "byte_entropy",
    "DataSummary",
    "summarize",
]


def _as_float_array(data: np.ndarray) -> np.ndarray:
    """Return ``data`` as a floating-point ndarray without copying when possible."""
    arr = np.asarray(data)
    if arr.size == 0:
        raise FeatureExtractionError("cannot compute statistics of an empty array")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def value_range(data: np.ndarray) -> float:
    """Return ``max(data) - min(data)`` as a Python float."""
    arr = _as_float_array(data)
    return float(arr.max() - arr.min())


def mean_squared_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two arrays of identical shape."""
    a = _as_float_array(original)
    b = _as_float_array(reconstructed)
    if a.shape != b.shape:
        raise FeatureExtractionError(
            f"shape mismatch: {a.shape} vs {b.shape} when computing MSE"
        )
    diff = a.astype(np.float64) - b.astype(np.float64)
    return float(np.mean(diff * diff))


def normalized_rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error normalised by the value range of ``original``.

    A constant original field yields 0.0 when the reconstruction is exact
    and ``inf`` otherwise (there is no meaningful normalisation).
    """
    mse = mean_squared_error(original, reconstructed)
    rng = value_range(original)
    if rng == 0.0:
        return 0.0 if mse == 0.0 else float("inf")
    return float(math.sqrt(mse) / rng)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, using the value range as the peak.

    Matches the definition used by Z-checker and the paper:
    ``PSNR = 20 log10(range) - 10 log10(MSE)``.  Identical arrays return
    ``inf``.
    """
    mse = mean_squared_error(original, reconstructed)
    if mse == 0.0:
        return float("inf")
    rng = value_range(original)
    if rng == 0.0:
        return float("-inf")
    return float(20.0 * math.log10(rng) - 10.0 * math.log10(mse))


def shannon_entropy(symbols: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of an integer symbol array."""
    arr = np.asarray(symbols).ravel()
    if arr.size == 0:
        return 0.0
    _, counts = np.unique(arr, return_counts=True)
    probs = counts.astype(np.float64) / arr.size
    return float(-np.sum(probs * np.log2(probs)))


def byte_entropy(data: np.ndarray) -> float:
    """Byte-level information entropy of an array's raw memory.

    The paper uses this as a data-based feature describing the
    "chaos level" of a dataset; values are in ``[0, 8]`` bits/byte.
    """
    arr = np.asarray(data)
    raw = np.frombuffer(np.ascontiguousarray(arr).tobytes(), dtype=np.uint8)
    if raw.size == 0:
        return 0.0
    counts = np.bincount(raw, minlength=256)
    probs = counts[counts > 0].astype(np.float64) / raw.size
    return float(-np.sum(probs * np.log2(probs)))


@dataclass(frozen=True)
class DataSummary:
    """Basic per-field statistics (Table I of the paper)."""

    minimum: float
    maximum: float
    value_range: float
    mean: float
    std: float
    entropy: float
    size: int

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary."""
        return asdict(self)


def summarize(data: np.ndarray) -> DataSummary:
    """Compute the :class:`DataSummary` of a field."""
    arr = _as_float_array(data)
    return DataSummary(
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        value_range=float(arr.max() - arr.min()),
        mean=float(arr.mean()),
        std=float(arr.std()),
        entropy=byte_entropy(arr),
        size=int(arr.size),
    )

"""Logging helpers.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in with :func:`configure_logging`.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_LIBRARY_LOGGER = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the library namespace."""
    if not name:
        return logging.getLogger(_LIBRARY_LOGGER)
    if name.startswith(_LIBRARY_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple stream handler to the library logger (idempotent)."""
    logger = logging.getLogger(_LIBRARY_LOGGER)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger

"""Core dataset containers: a named field and a collection of fields."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from ..utils.stats import DataSummary, summarize

__all__ = ["Field", "ScientificDataset"]


@dataclass
class Field:
    """One scientific data field (a single file in the paper's terminology)."""

    name: str
    data: np.ndarray
    application: str = ""
    snapshot: int = 0
    units: str = ""
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.data)
        if arr.size == 0:
            raise DatasetError(f"field {self.name!r} has no data")
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        self.data = arr

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the field's array."""
        return tuple(self.data.shape)

    @property
    def nbytes(self) -> int:
        """Uncompressed size in bytes."""
        return int(self.data.nbytes)

    @property
    def filename(self) -> str:
        """Canonical file name used when materialising the field on disk."""
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.application or 'field'}_{self.name}_s{self.snapshot:04d}_{dims}.f32"

    def summary(self) -> DataSummary:
        """Basic statistics of the field (Table I style)."""
        return summarize(self.data)


class ScientificDataset:
    """An ordered collection of fields produced by one application."""

    def __init__(self, name: str, fields: Optional[List[Field]] = None) -> None:
        self.name = name
        self._fields: List[Field] = list(fields or [])
        #: Generator recipe able to rebuild the dataset byte-identically
        #: (set by ``generate_application``); ``None`` for ad-hoc data.
        #: The service's durable job store persists it so crashed jobs
        #: can be re-queued.
        self.recipe: Optional[Dict[str, object]] = None

    def add(self, new_field: Field) -> None:
        """Append a field to the dataset."""
        self._fields.append(new_field)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __getitem__(self, index: int) -> Field:
        return self._fields[index]

    @property
    def fields(self) -> List[Field]:
        """All fields in insertion order."""
        return list(self._fields)

    @property
    def total_bytes(self) -> int:
        """Total uncompressed size of the dataset in bytes."""
        return sum(f.nbytes for f in self._fields)

    @property
    def file_count(self) -> int:
        """Number of files (fields) in the dataset."""
        return len(self._fields)

    def field_names(self) -> List[str]:
        """Unique field names present in the dataset (order preserved)."""
        seen: Dict[str, None] = {}
        for f in self._fields:
            seen.setdefault(f.name, None)
        return list(seen)

    def select(self, field_name: str) -> "ScientificDataset":
        """Return a sub-dataset containing only fields with ``field_name``."""
        subset = [f for f in self._fields if f.name == field_name]
        if not subset:
            raise DatasetError(f"dataset {self.name!r} has no field named {field_name!r}")
        return ScientificDataset(name=f"{self.name}:{field_name}", fields=subset)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary of dataset size and contents."""
        return {
            "name": self.name,
            "files": self.file_count,
            "total_bytes": self.total_bytes,
            "field_names": self.field_names(),
        }

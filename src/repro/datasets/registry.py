"""Dataset generation entry points.

:func:`generate_application` produces a :class:`ScientificDataset` for a
named application at a chosen scale; :func:`generate_field` produces a
single field.  Generation is deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..utils.rng import derive_seed
from .applications import FieldSpec, get_application_spec
from .base import Field, ScientificDataset
from .generators import (
    lognormal_field,
    rescale_to_range,
    spectral_field,
    vortex_field,
    wave_field,
)

__all__ = ["generate_field", "generate_application"]

#: Default linear scale applied to the paper's full-resolution dimensions so
#: the whole benchmark suite runs on a laptop.  The scaling is documented in
#: DESIGN.md / EXPERIMENTS.md.
DEFAULT_SCALE = 0.08

_STYLES = {"spectral", "wave", "vortex", "lognormal"}


def _synthesize(
    style: str, shape: Sequence[int], spec: FieldSpec, seed: int, snapshot: int = 0
) -> np.ndarray:
    if style == "spectral":
        return spectral_field(shape, beta=spec.beta, seed=seed, noise_level=spec.noise_level)
    if style == "wave":
        # Wavefield snapshots grow more complex over simulated time: later
        # snapshots contain more propagating fronts (higher entropy, slower
        # to compress), mirroring how RTM wavefields evolve.
        sources = min(2 + snapshot, 16)
        extent = min(0.25 + 0.05 * snapshot, 1.0)
        return wave_field(
            shape,
            sources=sources,
            seed=seed,
            noise_level=spec.noise_level * (1.0 + 0.1 * min(snapshot, 16)),
            extent=extent,
        )
    if style == "vortex":
        return vortex_field(shape, seed=seed, background_beta=spec.beta)
    if style == "lognormal":
        return lognormal_field(shape, beta=spec.beta, seed=seed)
    raise DatasetError(f"unknown generator style {style!r}; expected one of {_STYLES}")


def generate_field(
    application: str,
    field_name: str,
    snapshot: int = 0,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    shape: Optional[Tuple[int, ...]] = None,
    dtype: str = "float32",
) -> Field:
    """Generate a single synthetic field of an application.

    Args:
        application: application name (``cesm``, ``rtm``, ...).
        field_name: one of the application's field names.
        snapshot: snapshot index; changes the random realisation.
        scale: linear scaling applied to the full-resolution dimensions.
        seed: base seed; combined with application/field/snapshot.
        shape: optional explicit shape overriding the scaled dimensions.
        dtype: output dtype (the paper's datasets are float32).
    """
    spec = get_application_spec(application)
    matches = [f for f in spec.fields if f.name.lower() == field_name.lower()]
    if not matches:
        raise DatasetError(
            f"application {application!r} has no field {field_name!r}; "
            f"available: {spec.field_names()}"
        )
    field_spec = matches[0]
    dims = shape if shape is not None else spec.scaled_dimensions(scale)
    field_seed = derive_seed(seed, application, field_spec.name, snapshot)
    raw = _synthesize(field_spec.style, dims, field_spec, field_seed, snapshot=snapshot)
    data = rescale_to_range(raw, field_spec.minimum, field_spec.maximum).astype(dtype)
    return Field(
        name=field_spec.name,
        data=data,
        application=spec.name,
        snapshot=snapshot,
        metadata={"style": field_spec.style, "scale": str(scale)},
    )


def generate_application(
    application: str,
    snapshots: Optional[int] = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    fields: Optional[Sequence[str]] = None,
    dtype: str = "float32",
) -> ScientificDataset:
    """Generate a multi-file synthetic dataset for an application.

    ``snapshots`` defaults to a small number (2) rather than the paper's
    full snapshot counts so example scripts stay quick; benchmarks pass
    explicit values.
    """
    spec = get_application_spec(application)
    n_snapshots = 2 if snapshots is None else int(snapshots)
    if n_snapshots < 1:
        raise DatasetError(f"snapshots must be >= 1, got {n_snapshots}")
    selected = list(fields) if fields else spec.field_names()
    dataset = ScientificDataset(name=spec.name)
    for snap in range(n_snapshots):
        for field_name in selected:
            dataset.add(
                generate_field(
                    application,
                    field_name,
                    snapshot=snap,
                    scale=scale,
                    seed=seed,
                    dtype=dtype,
                )
            )
    # Generation is fully deterministic, so this recipe rebuilds the
    # dataset byte-identically — the durable job store persists it and
    # `OcelotService.recover()` uses it to re-queue jobs after a crash.
    dataset.recipe = {
        "application": application,
        "snapshots": n_snapshots,
        "scale": scale,
        "seed": seed,
        "fields": selected,
        "dtype": dtype,
    }
    return dataset

"""Application specifications: field lists, dimensions and value ranges.

The paper's Table I and Table IV document the applications used in the
evaluation.  Each :class:`ApplicationSpec` records the full-resolution
dimensions from Table IV, the per-field value ranges from Table I (where
published) and a generator style that controls how compressible the
synthetic fields are.  Generation applies a ``scale`` factor so that the
benchmark suite runs on laptop-sized data while keeping the same number
of dimensions and relative field characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DatasetError

__all__ = [
    "FieldSpec",
    "ApplicationSpec",
    "APPLICATIONS",
    "application_names",
    "get_application_spec",
]


@dataclass(frozen=True)
class FieldSpec:
    """Specification of one field within an application."""

    name: str
    minimum: float
    maximum: float
    style: str = "spectral"
    beta: float = 3.0
    noise_level: float = 0.0

    @property
    def value_range(self) -> float:
        """The field's value range (max - min)."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class ApplicationSpec:
    """Specification of one scientific application's dataset."""

    name: str
    science: str
    full_dimensions: Tuple[int, ...]
    fields: Tuple[FieldSpec, ...]
    snapshots: int = 1
    notes: str = ""

    def scaled_dimensions(self, scale: float) -> Tuple[int, ...]:
        """Dimensions after applying a linear ``scale`` factor (min 8 per axis)."""
        if scale <= 0 or scale > 1:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        return tuple(max(8, int(round(d * scale))) for d in self.full_dimensions)

    def field_names(self) -> List[str]:
        """Names of the fields defined for this application."""
        return [f.name for f in self.fields]


# --------------------------------------------------------------------------- #
# Application catalogue
# --------------------------------------------------------------------------- #
_CESM_FIELDS = (
    # Value ranges for CLDHGH / FLDSC / PCONVT come from Table I; the other
    # fields appear in Tables VI and use representative climate ranges.
    FieldSpec("CLDHGH", 0.0, 0.92, style="spectral", beta=3.2, noise_level=0.002),
    FieldSpec("FLDSC", 92.84, 418.24, style="spectral", beta=3.5, noise_level=0.001),
    FieldSpec("PCONVT", 39025.27, 103207.45, style="spectral", beta=3.0, noise_level=0.002),
    FieldSpec("TMQ", 0.3, 72.5, style="spectral", beta=3.4, noise_level=0.001),
    FieldSpec("CLDMED", 0.0, 1.0, style="spectral", beta=2.6, noise_level=0.01),
    FieldSpec("TROP_Z", 4500.0, 18500.0, style="spectral", beta=3.8, noise_level=0.0005),
    FieldSpec("ICEFRAC", 0.0, 1.0, style="spectral", beta=2.4, noise_level=0.02),
    FieldSpec("PSL", 95000.0, 105000.0, style="spectral", beta=3.6, noise_level=0.001),
    FieldSpec("FLNSC", 20.0, 450.0, style="spectral", beta=3.2, noise_level=0.002),
    FieldSpec("LHFLX", -60.0, 700.0, style="spectral", beta=2.9, noise_level=0.005),
    FieldSpec("SNOWHICE", 0.0, 1.3, style="spectral", beta=2.2, noise_level=0.03),
    FieldSpec("TREFHT", 210.0, 315.0, style="spectral", beta=3.7, noise_level=0.0005),
    FieldSpec("FSDTOA", 0.0, 1370.0, style="spectral", beta=4.0, noise_level=0.0),
)

_RTM_FIELDS = (
    FieldSpec("snapshot", -1.0, 1.0, style="wave", beta=2.0, noise_level=0.01),
)

_MIRANDA_FIELDS = (
    FieldSpec("density", 0.9, 2.5, style="spectral", beta=2.8, noise_level=0.002),
    FieldSpec("velocityx", -3.0, 3.0, style="spectral", beta=2.9, noise_level=0.002),
    FieldSpec("velocityy", -3.0, 3.0, style="spectral", beta=2.9, noise_level=0.002),
    FieldSpec("velocityz", -3.0, 3.0, style="spectral", beta=2.9, noise_level=0.002),
    FieldSpec("pressure", 0.5, 8.0, style="spectral", beta=3.1, noise_level=0.001),
    FieldSpec("diffusivity", 0.0, 1.0, style="spectral", beta=2.3, noise_level=0.01),
    FieldSpec("viscosity", 0.0, 0.4, style="spectral", beta=2.5, noise_level=0.005),
    FieldSpec("magvort", 0.0, 60.0, style="spectral", beta=1.9, noise_level=0.02),
)

_NYX_FIELDS = (
    FieldSpec("baryon_density", 0.01, 5000.0, style="lognormal", beta=2.4, noise_level=0.0),
    FieldSpec("dark_matter_density", 0.0, 12000.0, style="lognormal", beta=2.2, noise_level=0.0),
    FieldSpec("temperature", 1000.0, 5e6, style="lognormal", beta=2.6, noise_level=0.0),
    FieldSpec("velocity_x", -3.5e7, 3.5e7, style="spectral", beta=3.0, noise_level=0.001),
    FieldSpec("velocity_y", -3.5e7, 3.5e7, style="spectral", beta=3.0, noise_level=0.001),
    FieldSpec("velocity_z", -3.5e7, 3.5e7, style="spectral", beta=3.0, noise_level=0.001),
)

_ISABEL_FIELDS = (
    FieldSpec("TEMPERATURE", -83.0, 31.5, style="vortex", beta=3.2, noise_level=0.002),
    FieldSpec("PRESSURE", -5471.0, 3225.0, style="vortex", beta=3.4, noise_level=0.002),
    FieldSpec("SPEED", 0.0, 79.5, style="vortex", beta=2.8, noise_level=0.005),
    FieldSpec("QVAPOR", 0.0, 0.024, style="vortex", beta=2.6, noise_level=0.01),
    FieldSpec("CLOUD", 0.0, 0.0033, style="vortex", beta=2.0, noise_level=0.05),
    FieldSpec("PRECIP", 0.0, 0.0173, style="vortex", beta=2.1, noise_level=0.05),
    FieldSpec("QSNOW", 0.0, 0.0014, style="vortex", beta=2.2, noise_level=0.04),
    FieldSpec("W", -9.5, 28.6, style="vortex", beta=2.5, noise_level=0.01),
    FieldSpec("P", -5471.0, 3225.0, style="vortex", beta=3.4, noise_level=0.002),
)

_QMCPACK_FIELDS = (
    FieldSpec("einspline", -1.2, 1.2, style="wave", beta=2.0, noise_level=0.002),
)

_HACC_FIELDS = (
    # HACC particle data is nearly incompressible (velocities are close to
    # white noise at the per-particle level); Table I gives vx/xx ranges.
    FieldSpec("vx", -3846.21, 4031.25, style="spectral", beta=0.6, noise_level=0.5),
    FieldSpec("vy", -3800.0, 3900.0, style="spectral", beta=0.6, noise_level=0.5),
    FieldSpec("vz", -3700.0, 3950.0, style="spectral", beta=0.6, noise_level=0.5),
    FieldSpec("xx", 0.0, 256.0, style="spectral", beta=1.2, noise_level=0.2),
    FieldSpec("yy", 0.0, 256.0, style="spectral", beta=1.2, noise_level=0.2),
    FieldSpec("zz", 0.0, 256.0, style="spectral", beta=1.2, noise_level=0.2),
)

APPLICATIONS: Dict[str, ApplicationSpec] = {
    "cesm": ApplicationSpec(
        name="cesm",
        science="Climate",
        full_dimensions=(1800, 3600),
        fields=_CESM_FIELDS,
        snapshots=61,
        notes="CESM-LE atmosphere model output; 2-D lat/lon fields.",
    ),
    "rtm": ApplicationSpec(
        name="rtm",
        science="Seismic imaging (Reverse Time Migration)",
        full_dimensions=(449, 449, 235),
        fields=_RTM_FIELDS,
        snapshots=3601,
        notes="Wavefield snapshots; one field per snapshot.",
    ),
    "miranda": ApplicationSpec(
        name="miranda",
        science="Hydrodynamics (large turbulence simulation)",
        full_dimensions=(256, 384, 384),
        fields=_MIRANDA_FIELDS,
        snapshots=96,
        notes="768 files in the paper's fixed subset (8 fields x 96 snapshots).",
    ),
    "nyx": ApplicationSpec(
        name="nyx",
        science="Cosmology",
        full_dimensions=(512, 512, 512),
        fields=_NYX_FIELDS,
        snapshots=1,
        notes="AMReX cosmology code; 3-D uniform grids.",
    ),
    "isabel": ApplicationSpec(
        name="isabel",
        science="Weather (Hurricane Isabel)",
        full_dimensions=(100, 500, 500),
        fields=_ISABEL_FIELDS,
        snapshots=48,
        notes="WRF hurricane simulation; 3-D fields per hour.",
    ),
    "qmcpack": ApplicationSpec(
        name="qmcpack",
        science="Electronic structure",
        full_dimensions=(288, 69, 69),
        fields=_QMCPACK_FIELDS,
        snapshots=115,
        notes="einspline orbital data; the paper's 33120x69x69 is 115*288 orbitals.",
    ),
    "hacc": ApplicationSpec(
        name="hacc",
        science="Cosmology (N-body particles)",
        # One per-rank particle chunk (the full HACC run has ~1e9 particles;
        # a single file at this size exercises the same 1-D code path).
        full_dimensions=(8388608,),
        fields=_HACC_FIELDS,
        snapshots=1,
        notes="1-D particle arrays; nearly incompressible velocity components.",
    ),
}


def application_names() -> List[str]:
    """Names of all catalogued applications."""
    return sorted(APPLICATIONS)


def get_application_spec(name: str) -> ApplicationSpec:
    """Look up an application spec by (case-insensitive) name."""
    try:
        return APPLICATIONS[name.lower()]
    except KeyError as exc:
        valid = ", ".join(application_names())
        raise DatasetError(f"unknown application {name!r}; available: {valid}") from exc

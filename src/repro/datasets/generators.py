"""Synthetic field generators.

Fields are produced by spectral synthesis: white noise shaped by a
power-law spectrum ``|k|^-beta`` controls smoothness (large ``beta`` ⇒
smoother, more compressible fields), optionally combined with structured
components (propagating wavefronts, vortices, log-normal transforms) so
the applications differ in compressibility the way the real ones do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DatasetError
from ..utils.rng import rng_from_seed

__all__ = [
    "spectral_field",
    "wave_field",
    "vortex_field",
    "lognormal_field",
    "rescale_to_range",
]


def _wavenumber_grid(shape: Sequence[int]) -> np.ndarray:
    """Return the |k| magnitude grid for an FFT of the given shape."""
    axes = [np.fft.fftfreq(n) * n for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k_sq = np.zeros(tuple(shape), dtype=np.float64)
    for g in grids:
        k_sq += g * g
    return np.sqrt(k_sq)


def spectral_field(
    shape: Sequence[int],
    beta: float = 3.0,
    seed: int = 0,
    noise_level: float = 0.0,
) -> np.ndarray:
    """Gaussian random field with power spectrum ``|k|^-beta``.

    ``beta`` around 1 gives rough, hard-to-compress data; ``beta`` of 3-4
    gives smooth fields similar to climate/hydrodynamics variables.
    ``noise_level`` adds white noise relative to the field's standard
    deviation (mimicking sensor/solver noise floors).
    """
    dims = tuple(int(s) for s in shape)
    if any(d <= 0 for d in dims):
        raise DatasetError(f"all dimensions must be positive, got {dims}")
    rng = rng_from_seed(seed)
    white = rng.normal(size=dims)
    spectrum = np.fft.fftn(white)
    k = _wavenumber_grid(dims)
    k[tuple(0 for _ in dims)] = 1.0  # avoid division by zero at DC
    spectrum *= k ** (-beta / 2.0)
    field = np.real(np.fft.ifftn(spectrum))
    std = field.std()
    if std > 0:
        field = field / std
    if noise_level > 0:
        field = field + rng.normal(scale=noise_level, size=dims)
    return field.astype(np.float64)


def wave_field(
    shape: Sequence[int],
    wavelength: float = 12.0,
    sources: int = 3,
    seed: int = 0,
    noise_level: float = 0.01,
    extent: float = 1.0,
) -> np.ndarray:
    """Superposition of radial wavefronts (RTM / seismic style data).

    ``extent`` is the fraction of the domain the wavefronts have reached:
    early snapshots of an RTM run are mostly quiescent (low entropy, very
    compressible) and later snapshots fill the volume.
    """
    dims = tuple(int(s) for s in shape)
    rng = rng_from_seed(seed)
    coords = np.meshgrid(*[np.arange(n, dtype=np.float64) for n in dims], indexing="ij")
    field = np.zeros(dims, dtype=np.float64)
    extent = float(min(max(extent, 0.05), 1.0))
    max_radius = extent * float(np.sqrt(sum((n - 1) ** 2 for n in dims)))
    first_center = None
    for _ in range(max(1, sources)):
        center = [rng.uniform(0.3 * n, 0.7 * n) for n in dims]
        if first_center is None:
            first_center = center
        r_sq = np.zeros(dims, dtype=np.float64)
        for grid, c in zip(coords, center):
            r_sq += (grid - c) ** 2
        r = np.sqrt(r_sq)
        amplitude = rng.uniform(0.5, 1.5)
        phase = rng.uniform(0, 2 * np.pi)
        attenuation = np.exp(-r / (4.0 * max(dims)))
        field += amplitude * np.sin(2 * np.pi * r / wavelength + phase) * attenuation
    # Zero the region the wavefront has not reached yet.
    r_sq = np.zeros(dims, dtype=np.float64)
    for grid, c in zip(coords, first_center):
        r_sq += (grid - c) ** 2
    field = np.where(np.sqrt(r_sq) <= max_radius, field, 0.0)
    if noise_level > 0:
        field += rng.normal(scale=noise_level, size=dims) * (np.sqrt(r_sq) <= max_radius)
    return field


def vortex_field(
    shape: Sequence[int],
    vortices: int = 4,
    seed: int = 0,
    background_beta: float = 3.0,
) -> np.ndarray:
    """Rotational structures over a smooth background (hurricane-style data)."""
    dims = tuple(int(s) for s in shape)
    rng = rng_from_seed(seed)
    background = spectral_field(dims, beta=background_beta, seed=seed + 1)
    coords = np.meshgrid(*[np.linspace(-1, 1, n) for n in dims], indexing="ij")
    field = background
    for _ in range(max(1, vortices)):
        center = [rng.uniform(-0.7, 0.7) for _ in dims]
        width = rng.uniform(0.08, 0.3)
        r_sq = np.zeros(dims, dtype=np.float64)
        for grid, c in zip(coords, center):
            r_sq += (grid - c) ** 2
        strength = rng.uniform(1.0, 3.0) * rng.choice([-1.0, 1.0])
        field = field + strength * np.exp(-r_sq / (2 * width * width))
    return field


def lognormal_field(
    shape: Sequence[int], beta: float = 2.5, seed: int = 0, sigma: float = 1.5
) -> np.ndarray:
    """Positive field with heavy dynamic range (cosmology density style)."""
    base = spectral_field(shape, beta=beta, seed=seed)
    return np.exp(sigma * base)


def rescale_to_range(data: np.ndarray, minimum: float, maximum: float) -> np.ndarray:
    """Affinely map ``data`` onto ``[minimum, maximum]``.

    A constant input maps to the midpoint of the target interval.
    """
    if maximum < minimum:
        raise DatasetError(f"invalid target range [{minimum}, {maximum}]")
    arr = np.asarray(data, dtype=np.float64)
    lo = float(arr.min())
    hi = float(arr.max())
    if hi == lo:
        return np.full_like(arr, 0.5 * (minimum + maximum))
    scaled = (arr - lo) / (hi - lo)
    return scaled * (maximum - minimum) + minimum

"""Dataset persistence: raw binary fields with a JSON manifest.

The paper's datasets are flat binary float32 files (plus HDF5/NetCDF
containers loaded by the data-loader module); this module reads and
writes the flat-binary representation with a small JSON sidecar holding
shape/dtype/field metadata so round trips are lossless.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import DatasetError
from .base import Field, ScientificDataset

__all__ = ["save_field", "load_field", "save_dataset", "load_dataset"]


def save_field(field: Field, directory: Union[str, Path]) -> Path:
    """Write a field as ``<filename>`` raw binary plus ``<filename>.json``."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    data_path = target_dir / field.filename
    data_path.write_bytes(np.ascontiguousarray(field.data).tobytes())
    sidecar = {
        "name": field.name,
        "application": field.application,
        "snapshot": field.snapshot,
        "shape": list(field.shape),
        "dtype": str(field.data.dtype),
        "units": field.units,
        "metadata": field.metadata,
    }
    (target_dir / (field.filename + ".json")).write_text(
        json.dumps(sidecar, indent=2), encoding="utf-8"
    )
    return data_path


def load_field(data_path: Union[str, Path]) -> Field:
    """Load a field previously written by :func:`save_field`."""
    path = Path(data_path)
    sidecar_path = Path(str(path) + ".json")
    if not path.exists():
        raise DatasetError(f"field file {path} does not exist")
    if not sidecar_path.exists():
        raise DatasetError(f"missing sidecar {sidecar_path} for field file {path}")
    sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
    raw = np.frombuffer(path.read_bytes(), dtype=np.dtype(sidecar["dtype"]))
    data = raw.reshape(sidecar["shape"]).copy()
    return Field(
        name=sidecar["name"],
        data=data,
        application=sidecar.get("application", ""),
        snapshot=int(sidecar.get("snapshot", 0)),
        units=sidecar.get("units", ""),
        metadata=sidecar.get("metadata", {}),
    )


def save_dataset(dataset: ScientificDataset, directory: Union[str, Path]) -> Path:
    """Write every field of a dataset plus a ``manifest.json``."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    filenames = []
    for field in dataset:
        save_field(field, target_dir)
        filenames.append(field.filename)
    manifest = {"name": dataset.name, "files": filenames}
    (target_dir / "manifest.json").write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return target_dir


def load_dataset(directory: Union[str, Path]) -> ScientificDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    target_dir = Path(directory)
    manifest_path = target_dir / "manifest.json"
    if not manifest_path.exists():
        raise DatasetError(f"no manifest.json found in {target_dir}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    dataset = ScientificDataset(name=manifest["name"])
    for filename in manifest["files"]:
        dataset.add(load_field(target_dir / filename))
    return dataset

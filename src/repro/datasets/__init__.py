"""Synthetic scientific datasets mirroring the applications in the paper.

The paper evaluates on CESM (climate), RTM (seismic imaging), Miranda
(hydrodynamics), Nyx (cosmology), Hurricane ISABEL (weather), QMCPACK
(electronic structure) and HACC (cosmology particles).  Real data from
those applications is not redistributable/available offline, so this
package generates synthetic fields whose dimensionality, value ranges and
smoothness character match the published descriptions (Table I and
Table IV), which preserves the qualitative compressibility differences
the quality-prediction model must learn.
"""

from __future__ import annotations

from .base import Field, ScientificDataset
from .generators import (
    spectral_field,
    wave_field,
    vortex_field,
    lognormal_field,
    rescale_to_range,
)
from .applications import (
    APPLICATIONS,
    ApplicationSpec,
    FieldSpec,
    application_names,
    get_application_spec,
)
from .registry import generate_application, generate_field
from .io import save_dataset, load_dataset, save_field, load_field

__all__ = [
    "Field",
    "ScientificDataset",
    "spectral_field",
    "wave_field",
    "vortex_field",
    "lognormal_field",
    "rescale_to_range",
    "APPLICATIONS",
    "ApplicationSpec",
    "FieldSpec",
    "application_names",
    "get_application_spec",
    "generate_application",
    "generate_field",
    "save_dataset",
    "load_dataset",
    "save_field",
    "load_field",
]

"""Feature extraction for compression-quality prediction.

The paper groups features into three categories (Fig. 3):

* config-based — error bound and compressor type;
* data-based — min, max, value range, byte entropy, average Lorenzo error;
* compressor-based — p0, P0, quantisation entropy and the run-length
  estimator Rrle, all computed from subsampled quantisation bins.
"""

from __future__ import annotations

from .vector import FeatureVector, FEATURE_NAMES
from .config_features import ConfigFeatures, extract_config_features
from .data_features import DataFeatures, extract_data_features
from .compressor_features import (
    CompressorFeatures,
    extract_compressor_features,
    run_length_estimator,
)
from .extractor import BlockFeatures, FeatureExtractor, ExtractionResult

__all__ = [
    "BlockFeatures",
    "FeatureVector",
    "FEATURE_NAMES",
    "ConfigFeatures",
    "DataFeatures",
    "CompressorFeatures",
    "extract_config_features",
    "extract_data_features",
    "extract_compressor_features",
    "run_length_estimator",
    "FeatureExtractor",
    "ExtractionResult",
]

"""Data-based features: basic statistics, byte entropy and Lorenzo error.

These describe the characteristics of the dataset itself, independent of
any compressor configuration (Table I and Fig. 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..compression.predictors.lorenzo import lorenzo_prediction_errors
from ..errors import FeatureExtractionError
from ..utils.stats import byte_entropy

__all__ = ["DataFeatures", "extract_data_features"]


@dataclass(frozen=True)
class DataFeatures:
    """Features derived from the raw data values."""

    minimum: float
    maximum: float
    value_range: float
    byte_entropy: float
    mean_lorenzo_error: float

    def as_dict(self) -> Dict[str, float]:
        """Return the features keyed by canonical feature name."""
        return {
            "minimum": self.minimum,
            "maximum": self.maximum,
            "value_range": self.value_range,
            "byte_entropy": self.byte_entropy,
            "mean_lorenzo_error": self.mean_lorenzo_error,
        }


def extract_data_features(data: np.ndarray) -> DataFeatures:
    """Compute data-based features for a (possibly subsampled) field.

    The average Lorenzo error is computed on the true data values (the
    paper notes the features are extracted from the real values rather
    than reconstructed ones to keep the overhead low).
    """
    arr = np.asarray(data)
    if arr.size == 0:
        raise FeatureExtractionError("cannot extract data features from an empty array")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    finite = np.isfinite(arr)
    if not finite.any():
        raise FeatureExtractionError("array contains no finite values")
    finite_vals = arr[finite]
    lorenzo_err = lorenzo_prediction_errors(arr)
    lorenzo_err = lorenzo_err[np.isfinite(lorenzo_err)]
    mean_lorenzo = float(np.mean(np.abs(lorenzo_err))) if lorenzo_err.size else 0.0
    return DataFeatures(
        minimum=float(finite_vals.min()),
        maximum=float(finite_vals.max()),
        value_range=float(finite_vals.max() - finite_vals.min()),
        byte_entropy=byte_entropy(arr),
        mean_lorenzo_error=mean_lorenzo,
    )

"""The assembled feature vector fed to the quality-prediction model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["FEATURE_NAMES", "FeatureVector"]

#: Canonical feature ordering — 11 features, matching the paper's model.
FEATURE_NAMES: List[str] = [
    "error_bound_log10",
    "compressor_type",
    "minimum",
    "maximum",
    "value_range",
    "byte_entropy",
    "mean_lorenzo_error",
    "p0",
    "P0",
    "quantization_entropy",
    "run_length_estimator",
]


@dataclass
class FeatureVector:
    """A named feature vector for one (dataset, error bound, compressor) triple."""

    values: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [name for name in FEATURE_NAMES if name not in self.values]
        if missing:
            raise ValueError(f"feature vector missing features: {missing}")

    def to_array(self) -> np.ndarray:
        """Return the features as a 1-D float64 array in canonical order."""
        return np.array([float(self.values[name]) for name in FEATURE_NAMES], dtype=np.float64)

    def __getitem__(self, name: str) -> float:
        return float(self.values[name])

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the named feature values."""
        return dict(self.values)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "FeatureVector":
        """Rebuild a feature vector from a canonical-order array."""
        arr = np.asarray(array, dtype=np.float64).ravel()
        if arr.size != len(FEATURE_NAMES):
            raise ValueError(
                f"expected {len(FEATURE_NAMES)} features, got array of size {arr.size}"
            )
        return cls(values={name: float(v) for name, v in zip(FEATURE_NAMES, arr)})

    @staticmethod
    def matrix(vectors: "List[FeatureVector]") -> np.ndarray:
        """Stack feature vectors into a 2-D design matrix."""
        if not vectors:
            return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
        return np.vstack([vec.to_array() for vec in vectors])

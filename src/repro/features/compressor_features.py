"""Compressor-based features: statistics of the quantisation bins.

The paper derives four features from the quantisation bins produced on a
subsample of the data:

* ``p0`` — the fraction of zero-valued quantisation bins;
* ``P0`` — the fraction of the Huffman-encoded output occupied by the
  zero bin's codeword;
* the quantisation entropy (Shannon entropy of the bins);
* the run-length estimator ``Rrle = 1 / ((1 - p0) * P0 + (1 - P0))``.

These are the strongest predictors of compression ratio/speed and are
also correlated with PSNR (Figs. 5-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..compression.encoders.huffman import HuffmanCodebook
from ..compression.predictors.lorenzo import lorenzo_prediction_errors
from ..compression.quantizer import LinearQuantizer
from ..errors import FeatureExtractionError
from ..utils.stats import shannon_entropy

__all__ = ["CompressorFeatures", "extract_compressor_features", "run_length_estimator"]


@dataclass(frozen=True)
class CompressorFeatures:
    """Features derived from subsampled quantisation bins."""

    p0: float
    P0: float
    quantization_entropy: float
    run_length_estimator: float

    def as_dict(self) -> Dict[str, float]:
        """Return the features keyed by canonical feature name."""
        return {
            "p0": self.p0,
            "P0": self.P0,
            "quantization_entropy": self.quantization_entropy,
            "run_length_estimator": self.run_length_estimator,
        }


def run_length_estimator(p0: float, P0: float) -> float:
    """The paper's Rrle feature: ``1 / ((1 - p0) * P0 + (1 - P0))``.

    Unlike the C1-tuned estimator of prior work, Rrle has no per-application
    constant; it is fed to the ML model together with p0 and P0 so the
    model can fit application-specific behaviour itself.
    """
    denominator = (1.0 - p0) * P0 + (1.0 - P0)
    if denominator <= 0:
        # p0 == 1 and P0 == 1: the stream is entirely zero bins.
        return float(1e6)
    return float(1.0 / denominator)


def quantization_bins(
    data: np.ndarray, error_bound_abs: float, bin_radius: int = 32768
) -> np.ndarray:
    """Quantisation bins of the Lorenzo prediction error on the given sample.

    The paper computes the bins by running the prediction stage on the
    real (not reconstructed) data values of a subsample, which keeps the
    feature-extraction overhead negligible.
    """
    if error_bound_abs <= 0:
        raise FeatureExtractionError(
            f"absolute error bound must be positive, got {error_bound_abs}"
        )
    arr = np.asarray(data, dtype=np.float64)
    if arr.size == 0:
        raise FeatureExtractionError("cannot compute quantisation bins of an empty array")
    errors = lorenzo_prediction_errors(arr)
    quantizer = LinearQuantizer(bin_radius=bin_radius)
    result = quantizer.quantize(errors.ravel(), error_bound_abs)
    return result.codes


def extract_compressor_features(
    data: np.ndarray, error_bound_abs: float, bin_radius: int = 32768
) -> CompressorFeatures:
    """Compute p0, P0, quantisation entropy and Rrle for a data sample."""
    bins = quantization_bins(data, error_bound_abs, bin_radius=bin_radius)
    total = bins.size
    zero_count = int(np.count_nonzero(bins == 0))
    p0 = zero_count / total if total else 0.0
    uniques, counts = np.unique(bins, return_counts=True)
    frequencies = {int(s): int(c) for s, c in zip(uniques, counts)}
    codebook = HuffmanCodebook.from_frequencies(frequencies)
    P0 = codebook.zero_symbol_share(frequencies, zero_symbol=0)
    q_entropy = shannon_entropy(bins)
    return CompressorFeatures(
        p0=float(p0),
        P0=float(P0),
        quantization_entropy=float(q_entropy),
        run_length_estimator=run_length_estimator(p0, P0),
    )

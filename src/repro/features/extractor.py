"""Subsampled feature extraction with overhead accounting.

The extractor runs on roughly 1 % of the data (strided block sampling),
which the paper reports reduces prediction overhead to ~1.7 % of the
compression time (Fig. 13 A).  The extraction time is recorded so the
overhead analysis benchmark can reproduce that figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..compression.blocking import BlockPlan, BlockShapeLike, BlockSpec
from ..errors import FeatureExtractionError
from ..utils.sampling import block_sample
from .compressor_features import extract_compressor_features
from .config_features import extract_config_features
from .data_features import extract_data_features
from .vector import FeatureVector

__all__ = ["FeatureExtractor", "ExtractionResult", "BlockFeatures"]


@dataclass
class ExtractionResult:
    """A feature vector plus bookkeeping about how it was obtained."""

    features: FeatureVector
    sample_size: int
    full_size: int
    extraction_time_s: float

    @property
    def sample_fraction(self) -> float:
        """Fraction of the data actually inspected."""
        if self.full_size == 0:
            return 0.0
        return self.sample_size / self.full_size


@dataclass
class BlockFeatures:
    """Feature vector of one block of a larger array."""

    spec: BlockSpec
    result: ExtractionResult

    @property
    def features(self) -> FeatureVector:
        """The block's feature vector."""
        return self.result.features


class FeatureExtractor:
    """Extract the 11-feature vector for a (data, error bound, compressor) triple."""

    def __init__(
        self,
        sample_fraction: float = 0.01,
        sample_block: int = 64,
        bin_radius: int = 32768,
    ) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise FeatureExtractionError(
                f"sample fraction must be in (0, 1], got {sample_fraction}"
            )
        self.sample_fraction = float(sample_fraction)
        self.sample_block = int(sample_block)
        self.bin_radius = int(bin_radius)

    def sample(self, data: np.ndarray) -> np.ndarray:
        """Return the subsample used for feature extraction.

        Multi-dimensional arrays keep their trailing dimension structure
        where possible: sampling uses contiguous blocks in flattened
        order, which preserves local smoothness so that Lorenzo-error and
        quantisation-bin statistics remain representative.
        """
        arr = np.asarray(data)
        if self.sample_fraction >= 1.0:
            return arr
        flat_sample = block_sample(arr, block=self.sample_block, fraction=self.sample_fraction)
        return flat_sample

    def extract(
        self,
        data: np.ndarray,
        error_bound_abs: float,
        compressor: str = "sz3",
        sample: Optional[np.ndarray] = None,
    ) -> ExtractionResult:
        """Extract the feature vector, measuring the extraction time."""
        arr = np.asarray(data)
        if arr.size == 0:
            raise FeatureExtractionError("cannot extract features from an empty array")
        start = time.perf_counter()
        sampled = self.sample(arr) if sample is None else np.asarray(sample)
        config = extract_config_features(error_bound_abs, compressor)
        data_feats = extract_data_features(sampled)
        comp_feats = extract_compressor_features(
            sampled, error_bound_abs, bin_radius=self.bin_radius
        )
        elapsed = time.perf_counter() - start
        values = {}
        values.update(config.as_dict())
        values.update(data_feats.as_dict())
        values.update(comp_feats.as_dict())
        return ExtractionResult(
            features=FeatureVector(values=values),
            sample_size=int(np.asarray(sampled).size),
            full_size=int(arr.size),
            extraction_time_s=float(elapsed),
        )

    def extract_features(
        self, data: np.ndarray, error_bound_abs: float, compressor: str = "sz3"
    ) -> FeatureVector:
        """Convenience wrapper returning only the feature vector."""
        return self.extract(data, error_bound_abs, compressor).features

    def extract_blocks(
        self,
        data: np.ndarray,
        error_bound_abs: float,
        compressor: str = "sz3",
        block_shape: BlockShapeLike = 64,
    ) -> List[BlockFeatures]:
        """Extract one feature vector per block of ``data``.

        This feeds the quality model block-level samples — the same
        partition the blocked compression pipelines use — so per-block
        adaptive decisions (predictor choice, error-bound tuning) can be
        learned instead of whole-array ones.  Small blocks are inspected
        in full; larger blocks fall back to the extractor's subsampling.
        """
        arr = np.asarray(data)
        if arr.size == 0:
            raise FeatureExtractionError("cannot extract features from an empty array")
        plan = BlockPlan.partition(arr.shape, block_shape)
        results: List[BlockFeatures] = []
        for spec in plan:
            block = plan.extract(arr, spec)
            # Blocks whose subsample would be smaller than one sampling
            # window are inspected in full.
            sample = block if block.size * self.sample_fraction <= self.sample_block else None
            result = self.extract(block, error_bound_abs, compressor, sample=sample)
            results.append(BlockFeatures(spec=spec, result=result))
        return results

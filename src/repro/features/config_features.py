"""Config-based features: the user-chosen error bound and compressor type."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..compression.registry import compressor_type_id
from ..errors import FeatureExtractionError

__all__ = ["ConfigFeatures", "extract_config_features"]


@dataclass(frozen=True)
class ConfigFeatures:
    """Features derived purely from the compression configuration."""

    error_bound_log10: float
    compressor_type: int

    def as_dict(self) -> Dict[str, float]:
        """Return the features keyed by canonical feature name."""
        return {
            "error_bound_log10": self.error_bound_log10,
            "compressor_type": float(self.compressor_type),
        }


def extract_config_features(error_bound_abs: float, compressor: str) -> ConfigFeatures:
    """Build config-based features from an absolute bound and compressor name.

    The error bound spans many orders of magnitude (1e-6 … 1e-1 in the
    paper's sweeps), so its log10 is used as the model input.
    """
    if error_bound_abs <= 0:
        raise FeatureExtractionError(
            f"absolute error bound must be positive, got {error_bound_abs}"
        )
    return ConfigFeatures(
        error_bound_log10=math.log10(error_bound_abs),
        compressor_type=compressor_type_id(compressor),
    )
